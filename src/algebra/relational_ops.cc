#include "algebra/relational_ops.h"

#include "cells/cell_decomposition.h"
#include "core/check.h"

namespace dodb {
namespace algebra {

GeneralizedRelation Union(const GeneralizedRelation& a,
                          const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  GeneralizedRelation out = a;
  const std::vector<GeneralizedTuple>& additions = b.tuples();
  out.AddTuplesParallel(additions.size(),
                        [&](size_t i) { return additions[i]; });
  return out;
}

GeneralizedRelation Intersect(const GeneralizedRelation& a,
                              const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Intersect arity mismatch");
  GeneralizedRelation out(a.arity());
  const std::vector<GeneralizedTuple>& ta = a.tuples();
  const std::vector<GeneralizedTuple>& tb = b.tuples();
  // The pairwise-conjunction product in row-major order, so the merge
  // matches the classic nested loop exactly.
  out.AddTuplesParallel(tb.empty() ? 0 : ta.size() * tb.size(), [&](size_t i) {
    return ta[i / tb.size()].Conjoin(tb[i % tb.size()]);
  });
  return out;
}

GeneralizedRelation Complement(const GeneralizedRelation& rel) {
  // Arity-1 fast path: the cell decomposition over the relation's own
  // constants has only 2m+1 cells, so the exact complement is linear in
  // the scale (the incremental DNF is cubic on interval unions).
  if (rel.arity() == 1) {
    return ComplementViaCells(rel);
  }
  // At arity >= 2 the incremental DNF is kept even for wide relations: the
  // cell-based complement is often faster to *compute* but produces one
  // tuple per cell, which makes every downstream join pay for the blowup
  // (measured: parity workloads run 3x slower end-to-end with a cell-based
  // complement here).
  return ComplementViaDnf(rel);
}

GeneralizedRelation ComplementViaCells(const GeneralizedRelation& rel) {
  return CellDecomposition::Complement(rel).value();
}

GeneralizedRelation ComplementViaDnf(const GeneralizedRelation& rel) {
  // not(T1 or ... or Tn) == and_i not(Ti); each not(Ti) is the disjunction
  // of the negated atoms of a *minimized* Ti. The accumulator is kept as a
  // pruned DNF throughout.
  GeneralizedRelation acc = GeneralizedRelation::True(rel.arity());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    GeneralizedTuple minimized = tuple.Minimized();
    if (minimized.is_true()) return GeneralizedRelation(rel.arity());
    GeneralizedRelation next(rel.arity());
    const std::vector<GeneralizedTuple>& partials = acc.tuples();
    const std::vector<DenseAtom>& atoms = minimized.atoms();
    // The outer accumulator walk is inherently sequential; the partial x
    // negated-atom product inside one step is not. Filters unsat, prunes
    // subsumption, in the legacy (partial-major) order.
    next.AddTuplesParallel(partials.size() * atoms.size(), [&](size_t i) {
      GeneralizedTuple candidate = partials[i / atoms.size()];
      candidate.AddAtom(atoms[i % atoms.size()].Negated());
      return candidate;
    });
    acc = std::move(next);
    if (acc.IsEmpty()) break;
  }
  return acc;
}

GeneralizedRelation Difference(const GeneralizedRelation& a,
                               const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Difference arity mismatch");
  return Intersect(a, Complement(b));
}

GeneralizedRelation CrossProduct(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b) {
  int arity = a.arity() + b.arity();
  std::vector<int> a_map(a.arity());
  for (int i = 0; i < a.arity(); ++i) a_map[i] = i;
  std::vector<int> b_map(b.arity());
  for (int i = 0; i < b.arity(); ++i) b_map[i] = a.arity() + i;
  GeneralizedRelation out(arity);
  const std::vector<GeneralizedTuple>& tb = b.tuples();
  std::vector<GeneralizedTuple> wide_a;
  wide_a.reserve(a.tuples().size());
  for (const GeneralizedTuple& ta : a.tuples()) {
    wide_a.push_back(ta.Reindexed(a_map, arity));
  }
  out.AddTuplesParallel(
      tb.empty() ? 0 : wide_a.size() * tb.size(), [&](size_t i) {
        return wide_a[i / tb.size()].Conjoin(
            tb[i % tb.size()].Reindexed(b_map, arity));
      });
  return out;
}

GeneralizedRelation EquiJoin(
    const GeneralizedRelation& a, const GeneralizedRelation& b,
    const std::vector<std::pair<int, int>>& column_pairs) {
  GeneralizedRelation product = CrossProduct(a, b);
  for (const auto& [left, right] : column_pairs) {
    DODB_CHECK(left >= 0 && left < a.arity());
    DODB_CHECK(right >= 0 && right < b.arity());
    product = Select(product, DenseAtom(Term::Var(left), RelOp::kEq,
                                        Term::Var(a.arity() + right)));
  }
  return product;
}

GeneralizedRelation Select(const GeneralizedRelation& rel,
                           const DenseAtom& atom) {
  GeneralizedRelation out(rel.arity());
  const std::vector<GeneralizedTuple>& tuples = rel.tuples();
  out.AddTuplesParallel(tuples.size(), [&](size_t i) {
    GeneralizedTuple selected = tuples[i];
    selected.AddAtom(atom);
    return selected;
  });
  return out;
}

GeneralizedRelation Rename(const GeneralizedRelation& rel,
                           const std::vector<int>& mapping, int new_arity) {
  GeneralizedRelation out(new_arity);
  const std::vector<GeneralizedTuple>& tuples = rel.tuples();
  out.AddTuplesParallel(tuples.size(), [&](size_t i) {
    return tuples[i].Reindexed(mapping, new_arity);
  });
  return out;
}

}  // namespace algebra
}  // namespace dodb
