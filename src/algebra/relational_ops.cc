#include "algebra/relational_ops.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "algebra/join_planner.h"
#include "cells/cell_decomposition.h"
#include "constraints/closure_cache.h"
#include "constraints/eval_counters.h"
#include "constraints/relation_index.h"
#include "constraints/relation_shards.h"
#include "core/check.h"
#include "core/query_guard.h"
#include "core/thread_pool.h"

namespace dodb {
namespace algebra {

namespace {

// Below this many candidate pairs the plain all-pairs loop beats the index
// setup cost; both paths produce bit-identical relations either way.
constexpr size_t kIndexMinPairs = 16;

// Below this many candidate pairs the shard-pair machinery (profiles, cover
// matrix, per-pair jobs) costs more than it prunes; the flat indexed path
// handles small joins.
constexpr size_t kShardMinPairs = 256;

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// Routes a paged-fetch failure through cooperative cancellation: the guard
// (usually already tripped — the failure propagated out of one of its own
// page-cache checkpoints) aborts the query with this Status, and the
// enclosing operator's partial output is discarded like any tripped run's.
// Without a guard a spill-file I/O error mid-operator is unrecoverable.
void FailPagedFetch(const Status& status) {
  QueryGuard* guard = CurrentQueryGuard();
  DODB_CHECK_MSG(guard != nullptr, status.message().c_str());
  if (!guard->tripped()) {
    guard->Trip(GuardSite::kPageEvict, status);
  }
}

// Position-addressed tuple access over either storage form of a join
// input. Resident relations hand out references to their vector; paged
// relations decode positions through their bounded run cache, so an
// operator's live decoded memory stays O(runs in flight) while signatures
// keep coming from the resident index. Get/Signature are safe to call
// concurrently (the run cache locks; index signatures are read-only here),
// which is what lets paged inputs flow through the existing shard-pair
// pool jobs unchanged.
class InputTuples {
 public:
  explicit InputTuples(const GeneralizedRelation& rel)
      : rel_(rel),
        runs_(rel.PagedRuns()),
        resident_(runs_ == nullptr ? &rel.tuples() : nullptr) {}

  size_t size() const { return rel_.tuple_count(); }

  /// The tuple at position i, by value (a paged position is a copy out of
  /// its decoded run — cheap: atom storage is shared, not cloned).
  GeneralizedTuple Get(size_t i) const {
    if (resident_ != nullptr) return (*resident_)[i];
    auto tuple = runs_->TupleAt(i);
    if (tuple.ok()) return std::move(tuple).value();
    FailPagedFetch(tuple.status());
    // The guard is tripped; any well-formed tuple keeps the worker loops
    // type-correct until they observe it (the merged output never
    // surfaces).
    return GeneralizedTuple(rel_.arity());
  }

  /// The signature at position i without touching the payload (the index
  /// mirrors signatures position by position).
  const TupleSignature& Signature(size_t i) const {
    if (resident_ != nullptr) return (*resident_)[i].CachedSignature();
    return rel_.Index().signature(i);
  }

 private:
  const GeneralizedRelation& rel_;
  std::shared_ptr<PagedRunCache> runs_;
  const std::vector<GeneralizedTuple>* resident_;
};

// Streams rel's tuples in position order through fn (which returns false
// to stop early). Paged inputs decode one run at a time through the shared
// run cache — the whole relation is never resident at once.
template <typename Fn>
void ForEachTuple(const GeneralizedRelation& rel, Fn&& fn) {
  std::shared_ptr<PagedRunCache> runs = rel.PagedRuns();
  if (runs == nullptr) {
    for (const GeneralizedTuple& tuple : rel.tuples()) {
      if (!fn(tuple)) return;
    }
    return;
  }
  const PagedTupleSource& source = runs->source();
  for (size_t r = 0; r < source.run_count(); ++r) {
    auto run = runs->Run(r);
    if (!run.ok()) {
      FailPagedFetch(run.status());
      return;
    }
    for (const GeneralizedTuple& tuple : *run.value()) {
      if (!fn(tuple)) return;
    }
  }
}

// One candidate surviving the shard-pair filters, keyed by its row-major
// pair rank i * |tb| + j so the sequential merge can replay the exact
// legacy insertion sequence (minus provably-unsatisfiable pairs) no matter
// which shard-pair job produced it.
struct KeyedCandidate {
  uint64_t key;
  std::optional<GeneralizedTuple> canonical;
};

// Whether the sharded pair-join path applies: both inputs sharded into more
// than one shard and the pair matrix is large enough to amortize it.
bool ShardedJoinApplies(const GeneralizedRelation& a,
                        const GeneralizedRelation& b, size_t total_pairs) {
  if (!ShardingEnabled() || total_pairs < kShardMinPairs) return false;
  return a.Index().Shards()->shard_count() > 1 &&
         b.Index().Shards()->shard_count() > 1;
}

// Shard-pair–parallel join kernel shared by Intersect and EquiJoin.
//
// A candidate pair (i, j) survives iff, for every (left, right) in
// `test_columns`, tuple i's bounds on `left` and tuple j's bounds on
// `right` can agree on a value — the same predicate the flat indexed path
// applies, so the surviving pair set is identical; shard covers only decide
// which pairs get *tested*. Surviving candidates are canonicalized inside
// the shard-pair jobs (per-shard parallelism instead of per-tuple-block)
// and merged sequentially in ascending row-major key order, which replays
// the legacy nested-loop insertion sequence exactly — outputs stay
// bit-identical to both the unindexed and the flat indexed path at any
// thread count.
//
// The planner picks which side enumerates and which side's per-shard
// interval indexes are probed (an enumeration-only decision): enumerating
// the smaller side minimizes probe work.
void ShardedJoinInto(
    GeneralizedRelation* out, const GeneralizedRelation& a,
    const GeneralizedRelation& b,
    const std::vector<std::pair<int, int>>& test_columns,
    const std::function<GeneralizedTuple(size_t, size_t)>& make) {
  const RelationIndex& ia = a.Index();
  const RelationIndex& ib = b.Index();
  const RelationShards& sha = *ia.Shards();
  const RelationShards& shb = *ib.Shards();
  const size_t nb = b.tuple_count();
  const int probe_left = test_columns.front().first;
  const int probe_right = test_columns.front().second;
  const bool keep =
      KeepOrientation(ProfileRelation(a), ProfileRelation(b));
  if (!keep) EvalCounters::AddPlannerReorders(1);

  // Cover matrix: keep only shard pairs whose covers can agree on every
  // tested column pair (member boxes are contained in their shard's cover,
  // so a disjoint cover pair proves every member pair disjoint).
  struct ShardPair {
    uint32_t sa;
    uint32_t sb;
  };
  std::vector<ShardPair> live;
  const uint64_t considered =
      static_cast<uint64_t>(sha.shard_count()) * shb.shard_count();
  for (uint32_t sa = 0; sa < sha.shard_count(); ++sa) {
    const RelationShards::ShardStats& stats_a = sha.stats(sa);
    if (stats_a.size == 0) continue;
    for (uint32_t sb = 0; sb < shb.shard_count(); ++sb) {
      const RelationShards::ShardStats& stats_b = shb.stats(sb);
      if (stats_b.size == 0) continue;
      bool compatible = true;
      for (const auto& [left, right] : test_columns) {
        if (!BoundsMayOverlap(stats_a.cover.columns[left],
                              stats_b.cover.columns[right])) {
          compatible = false;
          break;
        }
      }
      if (compatible) live.push_back(ShardPair{sa, sb});
    }
  }
  EvalCounters::AddShardPairs(considered, considered - live.size());

  // Fault in the lazy member lists and the probed per-shard interval
  // indexes sequentially, so concurrent jobs read warm caches instead of
  // serializing on the build mutex.
  auto probe_start = std::chrono::steady_clock::now();
  for (const ShardPair& pair : live) {
    sha.Members(pair.sa);
    shb.Members(pair.sb);
    if (keep) {
      ib.ShardIntervalIndex(pair.sb, probe_right);
    } else {
      ia.ShardIntervalIndex(pair.sa, probe_left);
    }
  }

  // One job per surviving shard pair: filter member pairs by the exact
  // per-pair predicate and canonicalize the survivors. The memo pointer and
  // the closure-sweep and canonical-form modes are read here (calling
  // thread) and captured — workers don't inherit the thread-local scopes.
  ClosureCache* memo = CurrentClosureCache();
  const bool closure_fast = ClosureFastPathEnabled();
  const bool minimal = MinimalCanonicalEnabled();
  QueryGuard* guard = CurrentQueryGuard();
  auto eval_pair = [&](size_t k) -> std::vector<KeyedCandidate> {
    ClosureFastPathScope sweep(closure_fast);
    MinimalCanonicalScope canonical_mode(minimal);
    // Workers don't inherit the guard thread-local either; re-install it so
    // closure sweeps and the memo observe it, and bail before enumerating
    // when a sibling job already tripped.
    QueryGuardScope guard_scope(guard);
    if (guard != nullptr && !guard->Checkpoint(GuardSite::kShardJoin)) {
      return {};
    }
    GuardTicker ticker(guard, GuardSite::kShardJoin);
    const ShardPair& pair = live[k];
    const std::vector<size_t>& members_a = sha.Members(pair.sa);
    const std::vector<size_t>& members_b = shb.Members(pair.sb);
    std::vector<std::pair<size_t, size_t>> pairs;
    std::vector<size_t> window;
    auto test = [&](size_t i, size_t j) {
      const TupleSignature& siga = ia.signature(i);
      const TupleSignature& sigb = ib.signature(j);
      for (const auto& [left, right] : test_columns) {
        if (!BoundsMayOverlap(siga.columns[left], sigb.columns[right])) {
          return false;
        }
      }
      return true;
    };
    if (keep) {
      const ColumnIntervalIndex* intervals =
          ib.ShardIntervalIndex(pair.sb, probe_right);
      for (size_t i : members_a) {
        if (!ticker.Tick()) return {};
        window.clear();
        intervals->AppendCandidates(ia.signature(i).columns[probe_left],
                                    &window);
        for (size_t w : window) {
          size_t j = members_b[w];
          if (test(i, j)) pairs.emplace_back(i, j);
        }
      }
    } else {
      const ColumnIntervalIndex* intervals =
          ia.ShardIntervalIndex(pair.sa, probe_left);
      for (size_t j : members_b) {
        if (!ticker.Tick()) return {};
        window.clear();
        intervals->AppendCandidates(ib.signature(j).columns[probe_right],
                                    &window);
        for (size_t w : window) {
          size_t i = members_a[w];
          if (test(i, j)) pairs.emplace_back(i, j);
        }
      }
    }
    std::vector<KeyedCandidate> result;
    result.reserve(pairs.size());
    // Stride 64 here, not 1024: each iteration runs a full closure, so a
    // finer stride still costs well under the canonicalization and keeps
    // the deadline reaction inside one operator's millisecond budget. An
    // aborted job returns an empty chunk — a tripped run never surfaces
    // the merged relation, only the guard's Status.
    GuardTicker canon_ticker(guard, GuardSite::kShardJoin, 64);
    for (const auto& [i, j] : pairs) {
      if (!canon_ticker.Tick()) return {};
      GeneralizedTuple candidate = make(i, j);
      std::optional<GeneralizedTuple> canonical =
          memo != nullptr ? memo->CanonicalIfSatisfiable(std::move(candidate))
                          : candidate.CanonicalIfSatisfiable();
      result.push_back(
          KeyedCandidate{static_cast<uint64_t>(i) * nb + j,
                         std::move(canonical)});
    }
    return result;
  };

  std::vector<std::vector<KeyedCandidate>> per_pair;
  if (!ShouldParallelize(live.size())) {
    per_pair.reserve(live.size());
    for (size_t k = 0; k < live.size(); ++k) per_pair.push_back(eval_pair(k));
  } else {
    per_pair = ParallelMap<std::vector<KeyedCandidate>>(live.size(),
                                                        eval_pair);
  }
  EvalCounters::AddIndexProbes(live.size(), ElapsedNs(probe_start));

  size_t survivors = 0;
  for (const auto& chunk : per_pair) survivors += chunk.size();
  EvalCounters::AddPairsPruned(a.tuple_count() * nb - survivors);
  EvalCounters::AddCanonicalized(survivors);

  std::vector<KeyedCandidate> merged;
  merged.reserve(survivors);
  for (auto& chunk : per_pair) {
    for (KeyedCandidate& candidate : chunk) {
      merged.push_back(std::move(candidate));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const KeyedCandidate& x, const KeyedCandidate& y) {
              return x.key < y.key;
            });
  uint64_t inserted = 0;
  for (KeyedCandidate& candidate : merged) {
    if (!candidate.canonical.has_value()) continue;
    if (guard != nullptr) {
      if ((inserted++ & 63) == 63 &&
          !guard->Checkpoint(GuardSite::kShardJoin)) {
        return;
      }
      uint64_t bytes = candidate.canonical->ApproxBytes();
      out->AddCanonicalTuple(std::move(*candidate.canonical));
      if (!guard->AccountBytes(GuardSite::kShardJoin, bytes) ||
          !guard->CheckRelationSize(GuardSite::kShardJoin,
                                    out->tuple_count())) {
        return;
      }
      continue;
    }
    out->AddCanonicalTuple(std::move(*candidate.canonical));
  }
}

}  // namespace

GeneralizedRelation Union(const GeneralizedRelation& a,
                          const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  GeneralizedRelation out = a;
  // Stored tuples are already canonical (relation invariant), so they merge
  // directly — re-running the closure on them would be a no-op. A paged `b`
  // streams run by run; a paged `a` residentizes on the first merge (the
  // union is a new relation, not the spilled image).
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize, 64);
  ForEachTuple(b, [&](const GeneralizedTuple& addition) {
    if (!ticker.Tick()) return false;
    out.AddCanonicalTuple(addition);
    return true;
  });
  return out;
}

GeneralizedRelation Intersect(const GeneralizedRelation& a,
                              const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Intersect arity mismatch");
  GeneralizedRelation out(a.arity());
  if (a.is_paged() || b.is_paged()) {
    // Streaming variant: same paths, same enumeration orders, same pruning
    // predicates as the resident code below — signatures come from the
    // resident index and tuple payloads through the bounded run caches, so
    // outputs stay bit-identical while decoded memory stays O(runs in
    // flight). Kept separate so the resident hot path pays nothing.
    if (a.IsEmpty() || b.IsEmpty()) return out;
    InputTuples in_a(a);
    InputTuples in_b(b);
    const size_t nb = in_b.size();
    const size_t total = in_a.size() * nb;
    EvalCounters::AddPairsConsidered(total);
    if (!IndexingEnabled() || a.arity() == 0 || total < kIndexMinPairs) {
      out.AddTuplesParallel(total, [&](size_t i) {
        return in_a.Get(i / nb).Conjoin(in_b.Get(i % nb));
      });
      return out;
    }
    if (ShardedJoinApplies(a, b, total)) {
      std::vector<std::pair<int, int>> columns;
      columns.reserve(a.arity());
      for (int c = 0; c < a.arity(); ++c) columns.emplace_back(c, c);
      ShardedJoinInto(&out, a, b, columns, [&](size_t i, size_t j) {
        return in_a.Get(i).Conjoin(in_b.Get(j));
      });
      return out;
    }
    const RelationIndex& index = b.Index();
    const int probe_column = index.ProbeColumn(b.arity());
    const ColumnIntervalIndex* intervals = index.IntervalIndex(probe_column);
    auto probe_start = std::chrono::steady_clock::now();
    std::vector<std::pair<size_t, size_t>> pairs;
    std::vector<size_t> window;
    GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
    for (size_t i = 0; i < in_a.size(); ++i) {
      if (!ticker.Tick()) break;
      const TupleSignature& sa = in_a.Signature(i);
      window.clear();
      intervals->AppendCandidates(sa.columns[probe_column], &window);
      std::sort(window.begin(), window.end());
      for (size_t j : window) {
        if (SignaturesMayOverlap(sa, index.signature(j))) {
          pairs.emplace_back(i, j);
        }
      }
    }
    EvalCounters::AddIndexProbes(in_a.size(), ElapsedNs(probe_start));
    EvalCounters::AddPairsPruned(total - pairs.size());
    out.AddTuplesParallel(pairs.size(), [&](size_t k) {
      return in_a.Get(pairs[k].first).Conjoin(in_b.Get(pairs[k].second));
    });
    return out;
  }
  const std::vector<GeneralizedTuple>& ta = a.tuples();
  const std::vector<GeneralizedTuple>& tb = b.tuples();
  if (ta.empty() || tb.empty()) return out;
  const size_t total = ta.size() * tb.size();
  EvalCounters::AddPairsConsidered(total);
  if (!IndexingEnabled() || a.arity() == 0 || total < kIndexMinPairs) {
    // The pairwise-conjunction product in row-major order, so the merge
    // matches the classic nested loop exactly.
    out.AddTuplesParallel(total, [&](size_t i) {
      return ta[i / tb.size()].Conjoin(tb[i % tb.size()]);
    });
    return out;
  }
  if (ShardedJoinApplies(a, b, total)) {
    // Sharded path: prune whole shard pairs by their cover boxes, then test
    // and canonicalize surviving member pairs inside per-shard-pair pool
    // jobs. Intersect conjoins column-aligned, so the per-pair test spans
    // every column.
    std::vector<std::pair<int, int>> columns;
    columns.reserve(a.arity());
    for (int c = 0; c < a.arity(); ++c) columns.emplace_back(c, c);
    ShardedJoinInto(&out, a, b, columns, [&](size_t i, size_t j) {
      return ta[i].Conjoin(tb[j]);
    });
    return out;
  }
  // Indexed path: enumerate, still in row-major order, only the pairs whose
  // per-column bound boxes share a point. A pruned pair is provably
  // unsatisfiable, so it would have contributed nothing to the merge — the
  // surviving sequence is exactly the legacy sequence minus no-ops, and the
  // result is bit-identical.
  const RelationIndex& index = b.Index();
  const int probe_column = index.ProbeColumn(b.arity());
  const ColumnIntervalIndex* intervals = index.IntervalIndex(probe_column);
  auto probe_start = std::chrono::steady_clock::now();
  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<size_t> window;
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
  for (size_t i = 0; i < ta.size(); ++i) {
    if (!ticker.Tick()) break;
    const TupleSignature& sa = ta[i].CachedSignature();
    window.clear();
    intervals->AppendCandidates(sa.columns[probe_column], &window);
    std::sort(window.begin(), window.end());
    for (size_t j : window) {
      if (SignaturesMayOverlap(sa, index.signature(j))) {
        pairs.emplace_back(i, j);
      }
    }
  }
  EvalCounters::AddIndexProbes(ta.size(), ElapsedNs(probe_start));
  EvalCounters::AddPairsPruned(total - pairs.size());
  out.AddTuplesParallel(pairs.size(), [&](size_t k) {
    return ta[pairs[k].first].Conjoin(tb[pairs[k].second]);
  });
  return out;
}

GeneralizedRelation Complement(const GeneralizedRelation& rel) {
  // Arity-1 fast path: the cell decomposition over the relation's own
  // constants has only 2m+1 cells, so the exact complement is linear in
  // the scale (the incremental DNF is cubic on interval unions).
  if (rel.arity() == 1) {
    return ComplementViaCells(rel);
  }
  // At arity >= 2 the incremental DNF is kept even for wide relations: the
  // cell-based complement is often faster to *compute* but produces one
  // tuple per cell, which makes every downstream join pay for the blowup
  // (measured: parity workloads run 3x slower end-to-end with a cell-based
  // complement here).
  return ComplementViaDnf(rel);
}

GeneralizedRelation ComplementViaCells(const GeneralizedRelation& rel) {
  return CellDecomposition::Complement(rel).value();
}

GeneralizedRelation ComplementViaDnf(const GeneralizedRelation& rel) {
  // not(T1 or ... or Tn) == and_i not(Ti); each not(Ti) is the disjunction
  // of the negated atoms of a *minimized* Ti. The accumulator is kept as a
  // pruned DNF throughout.
  GeneralizedRelation acc = GeneralizedRelation::True(rel.arity());
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize, 4);
  bool covers_everything = false;
  ForEachTuple(rel, [&](const GeneralizedTuple& tuple) {
    // Each accumulator step multiplies the partials, so a complement blowup
    // grows between ticks; tick every few input tuples (the inner products
    // are themselves strided through AddTuplesParallel).
    if (!ticker.Tick()) return false;
    GeneralizedTuple minimized = tuple.Minimized();
    if (minimized.is_true()) {
      covers_everything = true;
      return false;
    }
    GeneralizedRelation next(rel.arity());
    const std::vector<GeneralizedTuple>& partials = acc.tuples();
    const AtomVec& atoms = minimized.atoms();
    const size_t total = partials.size() * atoms.size();
    EvalCounters::AddPairsConsidered(total);
    // The outer accumulator walk is inherently sequential; the partial x
    // negated-atom product inside one step is not. Filters unsat, prunes
    // subsumption, in the legacy (partial-major) order.
    if (!IndexingEnabled() || total < kIndexMinPairs) {
      next.AddTuplesParallel(total, [&](size_t i) {
        GeneralizedTuple candidate = partials[i / atoms.size()];
        candidate.AddAtom(atoms[i % atoms.size()].Negated());
        return candidate;
      });
    } else {
      // A negated var-constant atom confines one column to a half-line; a
      // partial whose signature box is disjoint from it yields an
      // unsatisfiable conjunction, so the pair is skipped up front.
      std::vector<std::optional<std::pair<int, ColumnBound>>> negated_bounds;
      negated_bounds.reserve(atoms.size());
      for (const DenseAtom& atom : atoms) {
        negated_bounds.push_back(BoundOfAtom(atom.Negated()));
      }
      std::vector<std::pair<size_t, size_t>> pairs;
      for (size_t p = 0; p < partials.size(); ++p) {
        const TupleSignature& sp = partials[p].CachedSignature();
        for (size_t k = 0; k < atoms.size(); ++k) {
          if (negated_bounds[k].has_value() &&
              !BoundsMayOverlap(sp.columns[negated_bounds[k]->first],
                                negated_bounds[k]->second)) {
            continue;
          }
          pairs.emplace_back(p, k);
        }
      }
      EvalCounters::AddPairsPruned(total - pairs.size());
      next.AddTuplesParallel(pairs.size(), [&](size_t i) {
        GeneralizedTuple candidate = partials[pairs[i].first];
        candidate.AddAtom(atoms[pairs[i].second].Negated());
        return candidate;
      });
    }
    acc = std::move(next);
    return !acc.IsEmpty();
  });
  if (covers_everything) return GeneralizedRelation(rel.arity());
  return acc;
}

GeneralizedRelation Difference(const GeneralizedRelation& a,
                               const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Difference arity mismatch");
  if (a.is_paged() || b.is_paged()) {
    // Streaming variant of the prefilter below (same predicate, same
    // order); the Intersect/Complement it feeds handle paged inputs
    // themselves.
    if (IndexingEnabled() && a.arity() > 0 && !a.IsEmpty() && !b.IsEmpty() &&
        a.tuple_count() * b.tuple_count() >= kIndexMinPairs) {
      const RelationIndex& index = b.Index();
      InputTuples in_b(b);
      GeneralizedRelation kept(a.arity());
      uint64_t checks = 0;
      auto probe_start = std::chrono::steady_clock::now();
      std::vector<size_t> window;
      GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
      ForEachTuple(a, [&](const GeneralizedTuple& tuple) {
        if (!ticker.Tick()) return false;
        window.clear();
        index.AppendOverlapCandidates(tuple.CachedSignature(), &window);
        bool contained = false;
        for (size_t j : window) {
          ++checks;
          if (tuple.EntailsTuple(in_b.Get(j))) {
            contained = true;
            break;
          }
        }
        if (!contained) kept.AddCanonicalTuple(tuple);
        return true;
      });
      EvalCounters::AddIndexProbes(a.tuple_count(), ElapsedNs(probe_start));
      EvalCounters::AddSubsumptionChecks(checks);
      if (kept.IsEmpty()) return kept;
      return Intersect(kept, Complement(b));
    }
    return Intersect(a, Complement(b));
  }
  if (IndexingEnabled() && a.arity() > 0 && !a.IsEmpty() && !b.IsEmpty() &&
      a.tuples().size() * b.tuples().size() >= kIndexMinPairs) {
    // Overlap-restricted containment pre-filter: a tuple of `a` wholly inside
    // a single tuple of `b` contributes nothing to a - b, and every Intersect
    // candidate it would have produced against not(b) is unsatisfiable — so
    // dropping it up front removes only no-ops and the result stays
    // bit-identical. In semi-naive fixpoints most re-derived tuples fall out
    // here, often before the complement is ever computed.
    const RelationIndex& index = b.Index();
    const std::vector<GeneralizedTuple>& tb = b.tuples();
    GeneralizedRelation kept(a.arity());
    uint64_t checks = 0;
    auto probe_start = std::chrono::steady_clock::now();
    std::vector<size_t> window;
    GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
    for (const GeneralizedTuple& tuple : a.tuples()) {
      if (!ticker.Tick()) break;
      window.clear();
      index.AppendOverlapCandidates(tuple.CachedSignature(), &window);
      bool contained = false;
      for (size_t j : window) {
        ++checks;
        if (tuple.EntailsTuple(tb[j])) {
          contained = true;
          break;
        }
      }
      if (!contained) kept.AddCanonicalTuple(tuple);
    }
    EvalCounters::AddIndexProbes(a.tuples().size(), ElapsedNs(probe_start));
    EvalCounters::AddSubsumptionChecks(checks);
    if (kept.IsEmpty()) return kept;
    return Intersect(kept, Complement(b));
  }
  return Intersect(a, Complement(b));
}

GeneralizedRelation CrossProduct(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b) {
  int arity = a.arity() + b.arity();
  std::vector<int> a_map(a.arity());
  for (int i = 0; i < a.arity(); ++i) a_map[i] = i;
  std::vector<int> b_map(b.arity());
  for (int i = 0; i < b.arity(); ++i) b_map[i] = a.arity() + i;
  GeneralizedRelation out(arity);
  if (a.is_paged() || b.is_paged()) {
    // Streaming variant: widen per candidate instead of precomputing
    // wide_a — the candidate conjunction (and so the canonical output) is
    // identical, only the resident precompute is skipped.
    InputTuples in_a(a);
    InputTuples in_b(b);
    const size_t nb = in_b.size();
    out.AddTuplesParallel(nb == 0 ? 0 : in_a.size() * nb, [&](size_t i) {
      return in_a.Get(i / nb).Reindexed(a_map, arity).Conjoin(
          in_b.Get(i % nb).Reindexed(b_map, arity));
    });
    return out;
  }
  const std::vector<GeneralizedTuple>& tb = b.tuples();
  std::vector<GeneralizedTuple> wide_a;
  wide_a.reserve(a.tuples().size());
  for (const GeneralizedTuple& ta : a.tuples()) {
    wide_a.push_back(ta.Reindexed(a_map, arity));
  }
  out.AddTuplesParallel(
      tb.empty() ? 0 : wide_a.size() * tb.size(), [&](size_t i) {
        return wide_a[i / tb.size()].Conjoin(
            tb[i % tb.size()].Reindexed(b_map, arity));
      });
  return out;
}

GeneralizedRelation EquiJoin(
    const GeneralizedRelation& a, const GeneralizedRelation& b,
    const std::vector<std::pair<int, int>>& column_pairs) {
  std::vector<DenseAtom> eq_atoms;
  eq_atoms.reserve(column_pairs.size());
  for (const auto& [left, right] : column_pairs) {
    DODB_CHECK(left >= 0 && left < a.arity());
    DODB_CHECK(right >= 0 && right < b.arity());
    eq_atoms.push_back(DenseAtom(Term::Var(left), RelOp::kEq,
                                 Term::Var(a.arity() + right)));
  }
  // Fused cross-product + equality selection: each candidate pair is widened
  // and conjoined with every join-equality atom in one step, so candidates
  // that fail the join never materialize as intermediates. Both modes
  // enumerate the same fused candidates in row-major order; the index only
  // removes pairs with provably disjoint joined-column bounds, keeping the
  // output bit-identical to the unindexed mode.
  const int arity = a.arity() + b.arity();
  GeneralizedRelation out(arity);
  if (a.is_paged() || b.is_paged()) {
    // Streaming variant: same fused candidates, same paths and enumeration
    // orders as the resident code below; widening happens per candidate
    // instead of through the wide_a precompute (the conjunction is the
    // same, so canonical outputs are bit-identical).
    if (a.IsEmpty() || b.IsEmpty()) return out;
    std::vector<int> a_map(a.arity());
    for (int i = 0; i < a.arity(); ++i) a_map[i] = i;
    std::vector<int> b_map(b.arity());
    for (int i = 0; i < b.arity(); ++i) b_map[i] = a.arity() + i;
    InputTuples in_a(a);
    InputTuples in_b(b);
    auto make_candidate = [&](size_t i, size_t j) {
      GeneralizedTuple candidate = in_a.Get(i).Reindexed(a_map, arity)
                                       .Conjoin(in_b.Get(j).Reindexed(
                                           b_map, arity));
      for (const DenseAtom& atom : eq_atoms) candidate.AddAtom(atom);
      return candidate;
    };
    const size_t nb = in_b.size();
    const size_t total = in_a.size() * nb;
    EvalCounters::AddPairsConsidered(total);
    if (!IndexingEnabled() || column_pairs.empty() ||
        total < kIndexMinPairs) {
      out.AddTuplesParallel(total, [&](size_t k) {
        return make_candidate(k / nb, k % nb);
      });
      return out;
    }
    if (ShardedJoinApplies(a, b, total)) {
      ShardedJoinInto(&out, a, b, column_pairs, [&](size_t i, size_t j) {
        return make_candidate(i, j);
      });
      return out;
    }
    const RelationIndex& index = b.Index();
    const int probe_left = column_pairs.front().first;
    const int probe_right = column_pairs.front().second;
    const ColumnIntervalIndex* intervals = index.IntervalIndex(probe_right);
    auto probe_start = std::chrono::steady_clock::now();
    std::vector<std::pair<size_t, size_t>> pairs;
    std::vector<size_t> window;
    GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
    for (size_t i = 0; i < in_a.size(); ++i) {
      if (!ticker.Tick()) break;
      const TupleSignature& sa = in_a.Signature(i);
      window.clear();
      intervals->AppendCandidates(sa.columns[probe_left], &window);
      std::sort(window.begin(), window.end());
      for (size_t j : window) {
        const TupleSignature& sb = index.signature(j);
        bool compatible = true;
        for (const auto& [left, right] : column_pairs) {
          if (!BoundsMayOverlap(sa.columns[left], sb.columns[right])) {
            compatible = false;
            break;
          }
        }
        if (compatible) pairs.emplace_back(i, j);
      }
    }
    EvalCounters::AddIndexProbes(in_a.size(), ElapsedNs(probe_start));
    EvalCounters::AddPairsPruned(total - pairs.size());
    out.AddTuplesParallel(pairs.size(), [&](size_t k) {
      return make_candidate(pairs[k].first, pairs[k].second);
    });
    return out;
  }
  const std::vector<GeneralizedTuple>& ta = a.tuples();
  const std::vector<GeneralizedTuple>& tb = b.tuples();
  if (ta.empty() || tb.empty()) return out;
  std::vector<int> a_map(a.arity());
  for (int i = 0; i < a.arity(); ++i) a_map[i] = i;
  std::vector<int> b_map(b.arity());
  for (int i = 0; i < b.arity(); ++i) b_map[i] = a.arity() + i;
  std::vector<GeneralizedTuple> wide_a;
  wide_a.reserve(ta.size());
  for (const GeneralizedTuple& tuple : ta) {
    wide_a.push_back(tuple.Reindexed(a_map, arity));
  }
  auto make_candidate = [&](size_t i, size_t j) {
    GeneralizedTuple candidate =
        wide_a[i].Conjoin(tb[j].Reindexed(b_map, arity));
    for (const DenseAtom& atom : eq_atoms) candidate.AddAtom(atom);
    return candidate;
  };
  const size_t total = ta.size() * tb.size();
  EvalCounters::AddPairsConsidered(total);
  if (!IndexingEnabled() || column_pairs.empty() || total < kIndexMinPairs) {
    out.AddTuplesParallel(total, [&](size_t k) {
      return make_candidate(k / tb.size(), k % tb.size());
    });
    return out;
  }
  if (ShardedJoinApplies(a, b, total)) {
    // Sharded path; the per-pair test spans exactly the joined column
    // pairs, as in the flat indexed path below.
    ShardedJoinInto(&out, a, b, column_pairs, [&](size_t i, size_t j) {
      return make_candidate(i, j);
    });
    return out;
  }
  // Indexed path: a pair survives only if, for every joined column pair,
  // the left column's bounds (in a) and the right column's bounds (in b)
  // can agree on a value — the join forces them equal, so disjoint bounds
  // mean an unsatisfiable candidate.
  const RelationIndex& index = b.Index();
  const int probe_left = column_pairs.front().first;
  const int probe_right = column_pairs.front().second;
  const ColumnIntervalIndex* intervals = index.IntervalIndex(probe_right);
  auto probe_start = std::chrono::steady_clock::now();
  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<size_t> window;
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize);
  for (size_t i = 0; i < ta.size(); ++i) {
    if (!ticker.Tick()) break;
    const TupleSignature& sa = ta[i].CachedSignature();
    window.clear();
    intervals->AppendCandidates(sa.columns[probe_left], &window);
    std::sort(window.begin(), window.end());
    for (size_t j : window) {
      const TupleSignature& sb = index.signature(j);
      bool compatible = true;
      for (const auto& [left, right] : column_pairs) {
        if (!BoundsMayOverlap(sa.columns[left], sb.columns[right])) {
          compatible = false;
          break;
        }
      }
      if (compatible) pairs.emplace_back(i, j);
    }
  }
  EvalCounters::AddIndexProbes(ta.size(), ElapsedNs(probe_start));
  EvalCounters::AddPairsPruned(total - pairs.size());
  out.AddTuplesParallel(pairs.size(), [&](size_t k) {
    return make_candidate(pairs[k].first, pairs[k].second);
  });
  return out;
}

GeneralizedRelation Select(const GeneralizedRelation& rel,
                           const DenseAtom& atom) {
  GeneralizedRelation out(rel.arity());
  if (rel.is_paged()) {
    InputTuples in(rel);
    out.AddTuplesParallel(in.size(), [&](size_t i) {
      GeneralizedTuple selected = in.Get(i);
      selected.AddAtom(atom);
      return selected;
    });
    return out;
  }
  const std::vector<GeneralizedTuple>& tuples = rel.tuples();
  out.AddTuplesParallel(tuples.size(), [&](size_t i) {
    GeneralizedTuple selected = tuples[i];
    selected.AddAtom(atom);
    return selected;
  });
  return out;
}

GeneralizedRelation Rename(const GeneralizedRelation& rel,
                           const std::vector<int>& mapping, int new_arity) {
  GeneralizedRelation out(new_arity);
  // Injective renamings (column permutation / widening — the common case in
  // rule evaluation) preserve canonical form up to re-orienting and
  // re-sorting atoms, so stored tuples skip the closure pass entirely. A
  // non-injective mapping merges columns, which adds implicit equalities and
  // needs the full pipeline.
  bool injective = true;
  std::vector<char> seen(new_arity, 0);
  for (int target : mapping) {
    if (target < 0) continue;  // unused source column
    if (target >= new_arity || seen[target]) {
      injective = false;
      break;
    }
    seen[target] = 1;
  }
  if (injective) {
    GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize,
                       64);
    ForEachTuple(rel, [&](const GeneralizedTuple& tuple) {
      if (!ticker.Tick()) return false;
      out.AddCanonicalTuple(tuple.ReindexedCanonical(mapping, new_arity));
      return true;
    });
    return out;
  }
  if (rel.is_paged()) {
    InputTuples in(rel);
    out.AddTuplesParallel(in.size(), [&](size_t i) {
      return in.Get(i).Reindexed(mapping, new_arity);
    });
    return out;
  }
  const std::vector<GeneralizedTuple>& tuples = rel.tuples();
  out.AddTuplesParallel(tuples.size(), [&](size_t i) {
    return tuples[i].Reindexed(mapping, new_arity);
  });
  return out;
}

}  // namespace algebra
}  // namespace dodb
