#ifndef DODB_ALGEBRA_RELATIONAL_OPS_H_
#define DODB_ALGEBRA_RELATIONAL_OPS_H_

#include <utility>
#include <vector>

#include "constraints/generalized_relation.h"

namespace dodb {

/// Closed-form generalized relational algebra over dense-order constraint
/// relations [KKR90]: every operation maps finitely representable relations
/// to finitely representable relations, so first-order queries evaluate
/// bottom-up without ever materializing infinite point sets.
namespace algebra {

/// a ∪ b (same arity).
GeneralizedRelation Union(const GeneralizedRelation& a,
                          const GeneralizedRelation& b);

/// a ∩ b (same arity): pairwise conjunction, unsatisfiable products pruned.
GeneralizedRelation Intersect(const GeneralizedRelation& a,
                              const GeneralizedRelation& b);

/// Q^k \ rel. Exact. Dispatches between the two strategies below: cells for
/// arity 1 (linear in the scale), incremental DNF otherwise.
GeneralizedRelation Complement(const GeneralizedRelation& rel);

/// The incremental-DNF complement strategy: negate tuple by tuple with
/// subsumption pruning. Exact at any arity (dense-order atoms are closed
/// under negation); worst-case exponential in the tuple count, but output
/// stays compact. Exposed for the strategy ablation in bench_fo_complexity.
GeneralizedRelation ComplementViaDnf(const GeneralizedRelation& rel);

/// The cell-decomposition complement strategy: one output tuple per
/// uncovered cell of the relation's own scale. Exact; cost and output size
/// are the cell count — linear for arity 1, (2m+1)^k-ish beyond. Exposed
/// for the same ablation.
GeneralizedRelation ComplementViaCells(const GeneralizedRelation& rel);

/// a \ b == a ∩ Complement(b).
GeneralizedRelation Difference(const GeneralizedRelation& a,
                               const GeneralizedRelation& b);

/// a × b: columns of a then columns of b.
GeneralizedRelation CrossProduct(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b);

/// Equi-join: the cross product constrained by a.column == b.column for
/// every (a_column, b_column) pair. Result columns are a's columns followed
/// by b's columns (joined columns are kept, pinned equal).
GeneralizedRelation EquiJoin(
    const GeneralizedRelation& a, const GeneralizedRelation& b,
    const std::vector<std::pair<int, int>>& column_pairs);

/// σ_atom(rel): conjoins one atom onto every tuple.
GeneralizedRelation Select(const GeneralizedRelation& rel,
                           const DenseAtom& atom);

/// Column permutation / widening: column i of `rel` becomes column
/// mapping[i] of the result. Mapping two source columns to the same target
/// is allowed and means their equality (used for R(x, x) style atoms).
GeneralizedRelation Rename(const GeneralizedRelation& rel,
                           const std::vector<int>& mapping, int new_arity);

}  // namespace algebra
}  // namespace dodb

#endif  // DODB_ALGEBRA_RELATIONAL_OPS_H_
