#ifndef DODB_TXN_TRANSACTION_MANAGER_H_
#define DODB_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "datalog/view_maintenance.h"
#include "io/database.h"
#include "storage/wal.h"

namespace dodb {

namespace storage {
class StorageEngine;
}  // namespace storage

namespace txn {

/// Multi-version concurrency control over the single-writer catalog
/// (DESIGN.md §16). The manager publishes an immutable, pre-warmed snapshot
/// of the catalog after every commit; transactions pin the snapshot current
/// at begin and never see later commits (snapshot isolation). Writers buffer
/// DML into a private write set and serialize only the commit step:
/// first-committer-wins validation, one atomic kTxnCommit WAL record group,
/// then installation of the next generation. Aborted and in-flight
/// transactions never touch the WAL or the authoritative catalog.
///
/// Concurrency contract:
///   - Begin / Abort / current_snapshot are safe from any thread.
///   - A Transaction object (its workspace, ops, deltas) belongs to ONE
///     thread at a time — the session worker that owns it. ExecuteBuffered
///     and reads against the workspace need no manager lock.
///   - AutoCommit / Commit / Checkpoint serialize on the internal write
///     mutex; everything else stays off it. Readers therefore never wait
///     for writers.
///
/// Snapshot warming: published snapshots are read concurrently by many
/// sessions, but GeneralizedRelation / GeneralizedTuple carry lazy caches
/// (relation index, tuple signature, closure graph) that are not safe to
/// build from two threads at once. Publish() therefore warms every changed
/// relation — builds its index, materializes paged payloads, and closes
/// every stored tuple's cached signature + order graph — before the
/// snapshot becomes visible; unchanged relations share the previous
/// snapshot's already-warm objects, so warming is O(changed), not
/// O(catalog).

/// Counters mirrored into \stats and the bench JSONs.
struct TxnCounters {
  std::atomic<uint64_t> begun{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> read_only_commits{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> snapshots_published{0};
};

/// One open transaction: a pinned snapshot plus the private workspace its
/// statements execute against (own writes visible, later commits not) and
/// the buffered write set replayed at commit. Owned by a single session
/// worker; the manager only touches it inside Commit/Abort.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  uint64_t begin_generation() const { return begin_generation_; }
  /// The statements executed so far (DML only; reads don't count).
  size_t write_set_size() const { return ops_.size(); }
  bool read_only() const { return ops_.empty(); }

  /// The catalog this transaction reads: the pinned snapshot plus every
  /// buffered write applied. Queries evaluate against this.
  const Database& workspace() const { return workspace_; }
  /// Mutable form for single-threaded hosts (the shell) whose query
  /// helpers take Database*; evaluation only builds lazy caches.
  Database* mutable_workspace() { return &workspace_; }

 private:
  friend class TransactionManager;

  uint64_t id_ = 0;
  uint64_t begin_generation_ = 0;
  std::shared_ptr<const Database> snapshot_;
  Database workspace_;
  std::vector<storage::WalRecord> ops_;
  std::vector<BaseDelta> deltas_;
  std::set<std::string> written_;
};

class TransactionManager {
 public:
  /// `db` is the authoritative catalog (single-writer, mutated only under
  /// the manager's write mutex from here on); `engine` (nullable) the
  /// durability layer; `views` (nullable) the registered materialized
  /// views. All must outlive the manager. Publishes the initial snapshot
  /// (generation resumes above the WAL's highest replayed commit
  /// generation when an engine is attached).
  TransactionManager(Database* db, storage::StorageEngine* engine,
                     ViewRegistry* views);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Opens a transaction pinned to the current snapshot. Never blocks on
  /// writers.
  std::unique_ptr<Transaction> Begin();

  /// Executes one DML statement inside `txn`: evaluated against the
  /// workspace (snapshot + own writes), buffered into the write set,
  /// nothing logged or installed. Runs entirely off the write mutex.
  Result<std::string> ExecuteBuffered(Transaction* txn, std::string_view text);

  /// Executes one bare (non-transactional) command with the PR 9 serial
  /// semantics — log, apply, maintain views — then publishes the next
  /// generation. Serializes on the write mutex. Auto-commit DML never
  /// conflicts (it sees and extends the latest state by construction).
  Result<std::string> AutoCommit(std::string_view text);

  /// Commits `txn`: first-committer-wins validation of the write set (a
  /// relation written here and committed by anyone else since begin =>
  /// kTxnConflict, nothing logged), one atomic kTxnCommit WAL group, then
  /// the buffered ops + view deltas install the next generation. A
  /// read-only transaction commits trivially (no WAL, no generation).
  /// On success `*warning` (optional) carries a non-fatal view-maintenance
  /// warning, `*commit_generation` (optional) the installed generation (0
  /// for a read-only commit), and the transaction is consumed. On conflict
  /// or WAL failure the catalog is untouched; the transaction is dead
  /// either way.
  Status Commit(std::unique_ptr<Transaction> txn,
                std::string* warning = nullptr,
                uint64_t* commit_generation = nullptr);

  /// Discards `txn`. Nothing to undo anywhere: the write set only ever
  /// lived in the transaction.
  void Abort(std::unique_ptr<Transaction> txn);

  /// The latest published snapshot (never null). Safe from any thread;
  /// cheap (one shared_ptr copy under a short lock). Sessions evaluate
  /// bare reads against this without pinning a whole transaction.
  std::shared_ptr<const Database> current_snapshot() const;

  /// Snapshot checkpoint pass-through, serialized with commits so the
  /// engine never checkpoints mid-commit. Error when no engine.
  Status Checkpoint();

  uint64_t generation() const;
  const TxnCounters& counters() const { return counters_; }

 private:
  /// Applies one buffered op to the authoritative catalog (the same
  /// semantics WAL replay uses, so recovery reproduces commits exactly).
  Status ApplyOp(const storage::WalRecord& op);

  /// Rebuilds the published snapshot: previous snapshot + fresh warmed
  /// copies of `changed` relations (plus any created/dropped names found
  /// by diffing). Caller holds write_mu_.
  void PublishLocked(const std::set<std::string>& changed);

  /// `changed` plus every materialized view reading one of its names.
  std::set<std::string> WithDependentViews(std::set<std::string> changed)
      const;

  Database* const db_;
  storage::StorageEngine* const engine_;
  ViewRegistry* const views_;

  /// Serializes AutoCommit / Commit / Checkpoint (every db_ mutation).
  std::mutex write_mu_;
  /// Guards snapshot_, generation_, last_writer_ for concurrent Begin /
  /// current_snapshot against the committing thread.
  mutable std::mutex state_mu_;
  std::shared_ptr<const Database> snapshot_;
  uint64_t generation_ = 0;
  /// Last commit generation that wrote each relation. First-committer-wins
  /// validation: a transaction conflicts iff some relation in its write set
  /// has last_writer_ > its begin generation.
  std::map<std::string, uint64_t> last_writer_;

  std::atomic<uint64_t> next_txn_id_{1};
  TxnCounters counters_;
};

}  // namespace txn
}  // namespace dodb

#endif  // DODB_TXN_TRANSACTION_MANAGER_H_
