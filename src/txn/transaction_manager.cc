#include "txn/transaction_manager.h"

#include <cctype>
#include <utility>

#include "algebra/relational_ops.h"
#include "constraints/generalized_relation.h"
#include "constraints/generalized_tuple.h"
#include "constraints/order_graph.h"
#include "core/check.h"
#include "core/str_util.h"
#include "io/commands.h"
#include "storage/storage_engine.h"

namespace dodb {
namespace txn {

namespace {

// Builds every lazy cache concurrent readers would otherwise race to build:
// the relation index (which also materializes paged payloads), and each
// stored tuple's signature and closed order graph. After this, evaluation
// against copies of the relation performs pure reads on the shared objects.
void WarmRelation(GeneralizedRelation* rel) {
  rel->Index();
  for (const GeneralizedTuple& tuple : rel->tuples()) {
    tuple.CachedSignature();
    OrderGraph* graph = tuple.CachedGraph();
    if (graph != nullptr) graph->Close();
  }
}

// The relation a create/drop/insert/delete command targets, parsed with the
// command layer's own grammar; "" when the text doesn't parse (the caller
// then conservatively treats the whole catalog as changed).
std::string TargetRelationName(std::string_view text) {
  std::string_view rest = StripWhitespace(text);
  if (!rest.empty() && rest.back() == ';') rest.remove_suffix(1);
  auto next_word = [&rest]() {
    rest = StripWhitespace(rest);
    size_t end = 0;
    while (end < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    std::string_view word = rest.substr(0, end);
    rest.remove_prefix(end);
    rest = StripWhitespace(rest);
    return word;
  };
  std::string_view verb = next_word();
  if (verb == "create") {
    size_t paren = rest.find('(');
    if (paren == std::string_view::npos) return "";
    return std::string(StripWhitespace(rest.substr(0, paren)));
  }
  if (verb == "drop") return std::string(StripWhitespace(rest));
  if (verb == "insert") {
    if (next_word() != "into") return "";
    return std::string(next_word());
  }
  if (verb == "delete") {
    if (next_word() != "from") return "";
    return std::string(next_word());
  }
  return "";
}

}  // namespace

TransactionManager::TransactionManager(Database* db,
                                       storage::StorageEngine* engine,
                                       ViewRegistry* views)
    : db_(db), engine_(engine), views_(views) {
  DODB_CHECK(db_ != nullptr);
  if (engine_ != nullptr) {
    generation_ = engine_->recovery().last_txn_generation;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  std::set<std::string> all;
  for (const std::string& name : db_->RelationNames()) all.insert(name);
  PublishLocked(all);
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  auto txn = std::unique_ptr<Transaction>(new Transaction());
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    txn->snapshot_ = snapshot_;
    txn->begin_generation_ = generation_;
  }
  // O(#relations): the workspace copies the catalog map, every relation
  // sharing the snapshot's warmed COW tuple storage and built index.
  txn->workspace_ = *txn->snapshot_;
  counters_.begun.fetch_add(1, std::memory_order_relaxed);
  return txn;
}

Result<std::string> TransactionManager::ExecuteBuffered(
    Transaction* txn, std::string_view text) {
  DODB_CHECK(txn != nullptr);
  size_t before = txn->ops_.size();
  Result<std::string> result = ExecuteCommandBuffered(
      &txn->workspace_, text, views_, &txn->ops_, &txn->deltas_);
  if (result.ok()) {
    for (size_t i = before; i < txn->ops_.size(); ++i) {
      txn->written_.insert(txn->ops_[i].name);
    }
  }
  return result;
}

Result<std::string> TransactionManager::AutoCommit(std::string_view text) {
  std::lock_guard<std::mutex> wlock(write_mu_);
  std::string target = TargetRelationName(text);
  Result<std::string> result = ExecuteCommand(db_, text, engine_, views_);
  if (!result.ok()) return result;
  std::set<std::string> changed;
  if (!target.empty()) {
    changed.insert(target);
  } else {
    // Unparseable-but-accepted command (shouldn't happen; the grammars
    // agree): treat the whole catalog as changed rather than risk a stale
    // snapshot or a missed conflict.
    for (const std::string& name : db_->RelationNames()) changed.insert(name);
  }
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    ++generation_;
    for (const std::string& name : changed) last_writer_[name] = generation_;
  }
  PublishLocked(WithDependentViews(std::move(changed)));
  return result;
}

Status TransactionManager::Commit(std::unique_ptr<Transaction> txn,
                                  std::string* warning,
                                  uint64_t* commit_generation_out) {
  DODB_CHECK(txn != nullptr);
  if (txn->ops_.empty()) {
    // Read-only: the snapshot it read is a committed state by construction,
    // so there is nothing to validate, log, or install.
    counters_.read_only_commits.fetch_add(1, std::memory_order_relaxed);
    counters_.committed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::lock_guard<std::mutex> wlock(write_mu_);
  uint64_t commit_generation = 0;
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    for (const std::string& name : txn->written_) {
      auto it = last_writer_.find(name);
      if (it != last_writer_.end() && it->second > txn->begin_generation_) {
        counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
        counters_.aborted.fetch_add(1, std::memory_order_relaxed);
        return Status::TxnConflict(StrCat(
            "relation '", name, "' was committed by generation ", it->second,
            " after this transaction began at generation ",
            txn->begin_generation_, "; first committer wins — retry"));
      }
    }
    commit_generation = generation_ + 1;
  }
  // One atomic record group: the whole write set becomes durable together
  // or (torn tail) vanishes together. On failure nothing was applied — the
  // engine is sticky-failed and the transaction dies without trace.
  if (engine_ != nullptr) {
    Status logged = engine_->LogTxnCommit(commit_generation, txn->ops_);
    if (!logged.ok()) {
      counters_.aborted.fetch_add(1, std::memory_order_relaxed);
      return logged;
    }
  }
  // Install: each op replayed against the authoritative catalog (same
  // semantics as WAL recovery), its view delta applied right after — the
  // exact sequence auto-commit would have produced. Validation guaranteed
  // the written relations' base state didn't move since the workspace
  // copied it, so the catalog ends bit-identical to the workspace.
  std::string warn;
  for (size_t i = 0; i < txn->ops_.size(); ++i) {
    Status applied = ApplyOp(txn->ops_[i]);
    if (!applied.ok()) {
      return Status::Internal(StrCat(
          "txn ", txn->id_, " commit diverged applying op ", i, ": ",
          applied.ToString()));
    }
    const BaseDelta& delta = txn->deltas_[i];
    if (views_ != nullptr &&
        (!delta.inserted.empty() || !delta.deleted.empty())) {
      Status maintained = views_->ApplyDelta(delta, db_);
      if (!maintained.ok() && warn.empty()) {
        warn = StrCat("view maintenance failed: ", maintained.message(),
                      "; affected views are stale until recomputed");
      }
    }
  }
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    generation_ = commit_generation;
    for (const std::string& name : txn->written_) {
      last_writer_[name] = commit_generation;
    }
  }
  PublishLocked(WithDependentViews(txn->written_));
  counters_.committed.fetch_add(1, std::memory_order_relaxed);
  if (warning != nullptr) *warning = std::move(warn);
  if (commit_generation_out != nullptr) {
    *commit_generation_out = commit_generation;
  }
  return Status::Ok();
}

void TransactionManager::Abort(std::unique_ptr<Transaction> txn) {
  DODB_CHECK(txn != nullptr);
  counters_.aborted.fetch_add(1, std::memory_order_relaxed);
  // The write set only ever lived in the transaction; dropping it is the
  // whole rollback.
}

std::shared_ptr<const Database> TransactionManager::current_snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return snapshot_;
}

uint64_t TransactionManager::generation() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return generation_;
}

Status TransactionManager::Checkpoint() {
  std::lock_guard<std::mutex> wlock(write_mu_);
  if (engine_ == nullptr) {
    return Status::Unsupported("no storage engine attached");
  }
  return engine_->Checkpoint();
}

Status TransactionManager::ApplyOp(const storage::WalRecord& op) {
  switch (op.type) {
    case storage::WalRecordType::kCreateRelation:
      return db_->AddRelation(op.name, GeneralizedRelation(op.arity));
    case storage::WalRecordType::kDropRelation:
      if (!db_->RemoveRelation(op.name)) {
        return Status::Internal(
            StrCat("commit drop of missing relation '", op.name, "'"));
      }
      return Status::Ok();
    case storage::WalRecordType::kSetRelation:
      db_->SetRelation(op.name, op.relation);
      return Status::Ok();
    case storage::WalRecordType::kInsertTuples: {
      const GeneralizedRelation* existing = db_->FindRelation(op.name);
      if (existing == nullptr) {
        return Status::Internal(
            StrCat("commit insert into missing relation '", op.name, "'"));
      }
      db_->SetRelation(op.name, algebra::Union(*existing, op.relation));
      return Status::Ok();
    }
    default:
      return Status::Internal(StrCat("unexpected op type ",
                                     static_cast<int>(op.type),
                                     " in a transaction write set"));
  }
}

std::set<std::string> TransactionManager::WithDependentViews(
    std::set<std::string> changed) const {
  if (views_ == nullptr) return changed;
  std::set<std::string> dependents;
  for (const MaterializedView* view : views_->Views()) {
    for (const std::string& name : changed) {
      if (view->base_relations().count(name) != 0) {
        dependents.insert(view->name());
        break;
      }
    }
  }
  changed.insert(dependents.begin(), dependents.end());
  return changed;
}

void TransactionManager::PublishLocked(const std::set<std::string>& changed) {
  std::shared_ptr<const Database> prev;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    prev = snapshot_;
  }
  // Start from the previous (already warm) snapshot so unchanged relations
  // keep sharing their built indexes and closed tuple caches; reconcile the
  // name set against the catalog (creates/drops need no changed entry),
  // then install fresh warmed copies of everything that moved.
  auto next = std::make_shared<Database>(prev != nullptr ? *prev : Database());
  for (const std::string& name : next->RelationNames()) {
    if (!db_->HasRelation(name)) next->RemoveRelation(name);
  }
  for (const std::string& name : db_->RelationNames()) {
    if (next->HasRelation(name) && changed.count(name) == 0) continue;
    const GeneralizedRelation* rel = db_->FindRelation(name);
    GeneralizedRelation copy = *rel;
    WarmRelation(&copy);
    next->SetRelation(name, std::move(copy));
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    snapshot_ = std::move(next);
  }
  counters_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace txn
}  // namespace dodb
