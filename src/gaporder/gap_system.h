#ifndef DODB_GAPORDER_GAP_SYSTEM_H_
#define DODB_GAPORDER_GAP_SYSTEM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"

namespace dodb {

/// A conjunction of *gap-order* constraints over the integers [Rev93]:
/// the discrete-order counterpart of a dense-order generalized tuple,
/// implemented as a difference-bound matrix (DBM).
///
/// Atoms are difference bounds x_i - x_j <= b (b ∈ Z), with a virtual
/// "zero" node for absolute bounds (x <= c, x >= c, x = c). The gap-order
/// atom "x <_g y" (y exceeds x by more than g) is x - y <= -(g+1). Over Z
/// the theory has no denseness: closure is integer shortest paths
/// (Floyd-Warshall), satisfiability is "no negative cycle", and eliminating
/// a variable after closure is exact (paths through the node are already
/// summarized).
///
/// This module exists for the paper's §6 contrast: over dense orders no
/// query can create new constants, so Datalog(not) fixpoints always
/// terminate (Theorem 4.4); over discrete orders the successor relation
/// y = x + 1 is a gap-order constraint, fresh constants appear ad infinitum,
/// and naive fixpoints diverge (Rev93 gives the non-naive closed form).
class GapSystem {
 public:
  /// Bound value; kUnbounded means "no constraint".
  static constexpr int64_t kUnbounded = INT64_MAX;

  /// The all-true system over `num_vars` integer variables.
  explicit GapSystem(int num_vars);

  int num_vars() const { return num_vars_; }

  /// Adds x_i - x_j <= bound.
  void AddDifference(int i, int j, int64_t bound);
  /// Adds x_i <= c.
  void AddUpperBound(int i, int64_t c);
  /// Adds x_i >= c.
  void AddLowerBound(int i, int64_t c);
  /// Adds x_i = c.
  void AddEquals(int i, int64_t c);
  /// The gap-order atom x_i <_g x_j (x_j - x_i > gap, gap >= 0).
  void AddGap(int i, int j, int64_t gap);

  /// Whether the conjunction has an integer solution. Computed by
  /// Floyd-Warshall closure; cached until the system is modified.
  bool IsSatisfiable() const;

  /// Point membership.
  bool Contains(const std::vector<int64_t>& point) const;

  /// Conjunction of two systems over the same variables.
  GapSystem Conjoin(const GapSystem& other) const;

  /// Exact existential elimination of x_var (arity preserved, variable
  /// unconstrained afterwards). Requires a satisfiable system.
  GapSystem EliminatedVariable(int var) const;

  /// The same constraints over a wider system: old variable i becomes
  /// variable mapping[i] (mapping values distinct, < new_num_vars).
  GapSystem Lifted(int new_num_vars, const std::vector<int>& mapping) const;

  /// Exact projection onto `keep` columns (in the given order): closure,
  /// then restriction to the kept nodes. Requires a satisfiable system.
  GapSystem Projected(const std::vector<int>& keep) const;

  /// The tightest implied bound on x_i - x_j (kUnbounded if none);
  /// requires a satisfiable system.
  int64_t ImpliedDifference(int i, int j) const;

  /// An integer solution, or nullopt when unsatisfiable.
  std::optional<std::vector<int64_t>> SampleWitness() const;

  /// Canonical (closed) form comparison.
  int Compare(const GapSystem& other) const;
  bool operator==(const GapSystem& o) const { return Compare(o) == 0; }
  bool operator<(const GapSystem& o) const { return Compare(o) < 0; }

  /// Distinct absolute constants mentioned by closed bounds against the
  /// zero node — the "active constants" that grow under gap-order fixpoints
  /// (the divergence engine of the §6 remark).
  std::vector<int64_t> AbsoluteConstants() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  // Matrix entry m[i][j] = bound on node_i - node_j; node 0 is "zero".
  int NodeCount() const { return num_vars_ + 1; }
  int64_t& At(int i, int j) { return matrix_[i * NodeCount() + j]; }
  int64_t Get(int i, int j) const { return matrix_[i * NodeCount() + j]; }
  void Tighten(int i, int j, int64_t bound);
  void Close() const;

  int num_vars_;
  std::vector<int64_t> matrix_;           // (n+1)^2, row-major
  mutable std::vector<int64_t> closed_;   // closure cache
  mutable bool closed_valid_ = false;
  mutable bool satisfiable_ = true;
};

}  // namespace dodb

#endif  // DODB_GAPORDER_GAP_SYSTEM_H_
