#include "gaporder/gap_system.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

namespace {
// Saturating addition over bounds (kUnbounded absorbs).
int64_t AddBounds(int64_t a, int64_t b) {
  if (a == GapSystem::kUnbounded || b == GapSystem::kUnbounded) {
    return GapSystem::kUnbounded;
  }
  return a + b;
}
}  // namespace

GapSystem::GapSystem(int num_vars) : num_vars_(num_vars) {
  DODB_CHECK(num_vars >= 0);
  matrix_.assign(static_cast<size_t>(NodeCount()) * NodeCount(), kUnbounded);
  for (int i = 0; i < NodeCount(); ++i) At(i, i) = 0;
}

void GapSystem::Tighten(int i, int j, int64_t bound) {
  if (bound < Get(i, j)) {
    At(i, j) = bound;
    closed_valid_ = false;
  }
}

void GapSystem::AddDifference(int i, int j, int64_t bound) {
  DODB_CHECK(i >= 0 && i < num_vars_ && j >= 0 && j < num_vars_);
  Tighten(i + 1, j + 1, bound);
}

void GapSystem::AddUpperBound(int i, int64_t c) {
  DODB_CHECK(i >= 0 && i < num_vars_);
  Tighten(i + 1, 0, c);  // x_i - 0 <= c
}

void GapSystem::AddLowerBound(int i, int64_t c) {
  DODB_CHECK(i >= 0 && i < num_vars_);
  Tighten(0, i + 1, -c);  // 0 - x_i <= -c
}

void GapSystem::AddEquals(int i, int64_t c) {
  AddUpperBound(i, c);
  AddLowerBound(i, c);
}

void GapSystem::AddGap(int i, int j, int64_t gap) {
  DODB_CHECK_MSG(gap >= 0, "gap must be non-negative");
  // x_j - x_i > gap  ==  x_i - x_j <= -(gap + 1).
  AddDifference(i, j, -(gap + 1));
}

void GapSystem::Close() const {
  if (closed_valid_) return;
  closed_valid_ = true;
  satisfiable_ = true;
  closed_ = matrix_;
  int n = NodeCount();
  auto at = [this, n](int i, int j) -> int64_t& {
    return closed_[i * n + j];
  };
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (at(i, k) == kUnbounded) continue;
      for (int j = 0; j < n; ++j) {
        int64_t through = AddBounds(at(i, k), at(k, j));
        if (through < at(i, j)) at(i, j) = through;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (at(i, i) < 0) {
      satisfiable_ = false;
      return;
    }
  }
}

bool GapSystem::IsSatisfiable() const {
  Close();
  return satisfiable_;
}

bool GapSystem::Contains(const std::vector<int64_t>& point) const {
  DODB_CHECK(static_cast<int>(point.size()) == num_vars_);
  int n = NodeCount();
  auto value = [&point](int node) -> int64_t {
    return node == 0 ? 0 : point[node - 1];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int64_t bound = Get(i, j);
      if (bound == kUnbounded) continue;
      if (value(i) - value(j) > bound) return false;
    }
  }
  return true;
}

GapSystem GapSystem::Conjoin(const GapSystem& other) const {
  DODB_CHECK_MSG(num_vars_ == other.num_vars_, "Conjoin arity mismatch");
  GapSystem out = *this;
  int n = NodeCount();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      out.Tighten(i, j, other.Get(i, j));
    }
  }
  return out;
}

GapSystem GapSystem::EliminatedVariable(int var) const {
  DODB_CHECK(var >= 0 && var < num_vars_);
  DODB_CHECK_MSG(IsSatisfiable(), "elimination on unsatisfiable system");
  // After closure every path through `var` is summarized by a direct edge,
  // so dropping its row and column is exact existential elimination over Z.
  GapSystem out(num_vars_);
  int n = NodeCount();
  int victim = var + 1;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == victim || j == victim || i == j) continue;
      int64_t bound = closed_[i * n + j];
      if (bound != kUnbounded) out.Tighten(i, j, bound);
    }
  }
  return out;
}

GapSystem GapSystem::Lifted(int new_num_vars,
                            const std::vector<int>& mapping) const {
  DODB_CHECK(static_cast<int>(mapping.size()) == num_vars_);
  GapSystem out(new_num_vars);
  auto map_node = [&mapping, new_num_vars](int node) {
    if (node == 0) return 0;
    int target = mapping[node - 1];
    DODB_CHECK(target >= 0 && target < new_num_vars);
    return target + 1;
  };
  int n = NodeCount();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      int64_t bound = Get(i, j);
      if (bound != kUnbounded) out.Tighten(map_node(i), map_node(j), bound);
    }
  }
  return out;
}

GapSystem GapSystem::Projected(const std::vector<int>& keep) const {
  DODB_CHECK_MSG(IsSatisfiable(), "projection of unsatisfiable system");
  GapSystem out(static_cast<int>(keep.size()));
  int n = NodeCount();
  auto old_node = [&keep, this](int new_node) {
    if (new_node == 0) return 0;
    int column = keep[new_node - 1];
    DODB_CHECK(column >= 0 && column < num_vars_);
    return column + 1;
  };
  int m = out.NodeCount();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      int64_t bound = closed_[old_node(i) * n + old_node(j)];
      if (bound != kUnbounded) out.Tighten(i, j, bound);
    }
  }
  return out;
}

int64_t GapSystem::ImpliedDifference(int i, int j) const {
  DODB_CHECK(i >= 0 && i < num_vars_ && j >= 0 && j < num_vars_);
  DODB_CHECK_MSG(IsSatisfiable(), "query on unsatisfiable system");
  return closed_[(i + 1) * NodeCount() + (j + 1)];
}

std::optional<std::vector<int64_t>> GapSystem::SampleWitness() const {
  if (!IsSatisfiable()) return std::nullopt;
  // Textbook potentials: shortest distances from a virtual source with a
  // 0-edge to every node. A DBM constraint x_i - x_j <= w is a graph edge
  // j -> i of weight w; the distances then satisfy d(i) <= d(j) + w, so
  // x_i := d(i) - d(zero) is an integer solution (no negative cycles since
  // the system is satisfiable).
  int n = NodeCount();
  std::vector<int64_t> dist(n, 0);
  for (int round = 0; round < n; ++round) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        int64_t w = Get(i, j);
        if (w == kUnbounded) continue;
        if (dist[j] + w < dist[i]) dist[i] = dist[j] + w;
      }
    }
  }
  std::vector<int64_t> point(num_vars_);
  for (int i = 1; i < n; ++i) point[i - 1] = dist[i] - dist[0];
  DODB_CHECK_MSG(Contains(point), "witness construction failed");
  return point;
}

int GapSystem::Compare(const GapSystem& other) const {
  if (num_vars_ != other.num_vars_) {
    return num_vars_ < other.num_vars_ ? -1 : 1;
  }
  Close();
  other.Close();
  if (satisfiable_ != other.satisfiable_) return satisfiable_ ? 1 : -1;
  if (closed_ != other.closed_) return closed_ < other.closed_ ? -1 : 1;
  return 0;
}

std::vector<int64_t> GapSystem::AbsoluteConstants() const {
  DODB_CHECK_MSG(IsSatisfiable(), "query on unsatisfiable system");
  std::set<int64_t> constants;
  int n = NodeCount();
  for (int i = 1; i < n; ++i) {
    int64_t upper = closed_[i * n + 0];
    int64_t lower = closed_[0 * n + i];
    if (upper != kUnbounded) constants.insert(upper);
    if (lower != kUnbounded) constants.insert(-lower);
  }
  return std::vector<int64_t>(constants.begin(), constants.end());
}

std::string GapSystem::ToString(
    const std::vector<std::string>* names) const {
  auto var_name = [names](int index) {
    if (names != nullptr && index < static_cast<int>(names->size())) {
      return (*names)[index];
    }
    return StrCat("x", index);
  };
  std::vector<std::string> parts;
  int n = NodeCount();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int64_t bound = Get(i, j);
      if (i == j || bound == kUnbounded) continue;
      if (i == 0) {
        parts.push_back(StrCat(var_name(j - 1), " >= ", -bound));
      } else if (j == 0) {
        parts.push_back(StrCat(var_name(i - 1), " <= ", bound));
      } else {
        parts.push_back(StrCat(var_name(i - 1), " - ", var_name(j - 1),
                               " <= ", bound));
      }
    }
  }
  if (parts.empty()) return "true";
  return StrJoin(parts, " and ");
}

}  // namespace dodb
