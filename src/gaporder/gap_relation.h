#ifndef DODB_GAPORDER_GAP_RELATION_H_
#define DODB_GAPORDER_GAP_RELATION_H_

#include <string>
#include <vector>

#include "gaporder/gap_system.h"

namespace dodb {

/// A finite union of gap-order systems over Z^k — the discrete-order
/// counterpart of GeneralizedRelation. Stored systems are satisfiable and
/// deduplicated by their closed canonical form.
class GapRelation {
 public:
  explicit GapRelation(int num_vars);

  static GapRelation FromPoints(int num_vars,
                                const std::vector<std::vector<int64_t>>& pts);

  int num_vars() const { return num_vars_; }
  const std::vector<GapSystem>& systems() const { return systems_; }
  bool IsEmpty() const { return systems_.empty(); }
  size_t system_count() const { return systems_.size(); }

  void AddSystem(GapSystem system);

  bool Contains(const std::vector<int64_t>& point) const;

  /// Union of the two relations.
  GapRelation UnionWith(const GapRelation& other) const;

  /// Pairwise conjunction.
  GapRelation IntersectWith(const GapRelation& other) const;

  /// Distinct absolute constants across all systems, ascending. Under
  /// gap-order fixpoints this set *grows without bound* — the §6 divergence
  /// (dense-order operations never mint constants).
  std::vector<int64_t> AbsoluteConstants() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  int num_vars_;
  std::vector<GapSystem> systems_;
};

/// One naive inflationary round of the successor program
///   p(y) :- p(x), y - x = 1
/// over a unary gap relation: p ∪ (p shifted by +1). Iterating this from a
/// finite seed never stabilizes — the executable content of the paper's §6
/// remark that Theorem 4.4 fails over discrete orders.
GapRelation SuccessorStep(const GapRelation& p);

}  // namespace dodb

#endif  // DODB_GAPORDER_GAP_RELATION_H_
