#include "gaporder/gap_relation.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

GapRelation::GapRelation(int num_vars) : num_vars_(num_vars) {
  DODB_CHECK(num_vars >= 0);
}

GapRelation GapRelation::FromPoints(
    int num_vars, const std::vector<std::vector<int64_t>>& pts) {
  GapRelation out(num_vars);
  for (const std::vector<int64_t>& point : pts) {
    DODB_CHECK(static_cast<int>(point.size()) == num_vars);
    GapSystem system(num_vars);
    for (int i = 0; i < num_vars; ++i) system.AddEquals(i, point[i]);
    out.AddSystem(std::move(system));
  }
  return out;
}

void GapRelation::AddSystem(GapSystem system) {
  DODB_CHECK_MSG(system.num_vars() == num_vars_, "AddSystem arity mismatch");
  if (!system.IsSatisfiable()) return;
  auto pos = std::lower_bound(systems_.begin(), systems_.end(), system);
  if (pos != systems_.end() && *pos == system) return;
  systems_.insert(pos, std::move(system));
}

bool GapRelation::Contains(const std::vector<int64_t>& point) const {
  for (const GapSystem& system : systems_) {
    if (system.Contains(point)) return true;
  }
  return false;
}

GapRelation GapRelation::UnionWith(const GapRelation& other) const {
  DODB_CHECK_MSG(num_vars_ == other.num_vars_, "Union arity mismatch");
  GapRelation out = *this;
  for (const GapSystem& system : other.systems_) out.AddSystem(system);
  return out;
}

GapRelation GapRelation::IntersectWith(const GapRelation& other) const {
  DODB_CHECK_MSG(num_vars_ == other.num_vars_, "Intersect arity mismatch");
  GapRelation out(num_vars_);
  for (const GapSystem& a : systems_) {
    for (const GapSystem& b : other.systems_) {
      out.AddSystem(a.Conjoin(b));
    }
  }
  return out;
}

std::vector<int64_t> GapRelation::AbsoluteConstants() const {
  std::set<int64_t> constants;
  for (const GapSystem& system : systems_) {
    for (int64_t c : system.AbsoluteConstants()) constants.insert(c);
  }
  return std::vector<int64_t>(constants.begin(), constants.end());
}

std::string GapRelation::ToString(
    const std::vector<std::string>* names) const {
  if (systems_.empty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(systems_.size());
  for (const GapSystem& system : systems_) {
    parts.push_back(system.ToString(names));
  }
  return StrCat("{ ", StrJoin(parts, " ; "), " }");
}

GapRelation SuccessorStep(const GapRelation& p) {
  DODB_CHECK_MSG(p.num_vars() == 1, "SuccessorStep is unary");
  GapRelation out = p;
  for (const GapSystem& system : p.systems()) {
    // exists x (p(x) and y - x = 1), as a binary scratch system (column 0
    // holds x, column 1 holds y) projected onto y.
    GapSystem pair = system.Lifted(2, {0});
    pair.AddDifference(1, 0, 1);   // y - x <= 1
    pair.AddDifference(0, 1, -1);  // x - y <= -1, i.e. y - x >= 1
    out.AddSystem(pair.EliminatedVariable(0).Projected({1}));
  }
  return out;
}

}  // namespace dodb
