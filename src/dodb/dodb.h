#ifndef DODB_DODB_H_
#define DODB_DODB_H_

/// Umbrella header for the dodb dense-order constraint database engine —
/// a from-scratch implementation of the model and query languages of
/// Grumbach & Su, "Dense-Order Constraint Databases" (PODS 1995).
///
/// Layers (bottom-up):
///   core/         exact arithmetic (BigInt, Rational) and error handling
///   constraints/  generalized tuples & relations over (Q, <=), closure,
///                 satisfiability, quantifier elimination
///   linear/       FO+ substrate: linear constraints, Fourier-Motzkin
///   cells/        complete order types, semantic operations, the standard
///                 encoding, automorphisms of Q
///   algebra/      closed-form generalized relational algebra
///   fo/           FO / FO+ surface syntax, parser and evaluators
///   datalog/      inflationary & stratified Datalog(not)
///   complex/      complex constraint objects and the C-CALC calculus
///   spatial/      Figure-1 regions, intervals, region connectivity
///   io/           database catalog and text format
///   storage/      durable storage: binary snapshots, write-ahead log,
///                 crash recovery
///   server/       multi-client TCP server, wire protocol, client library
///   txn/          MVCC transactions: snapshot isolation, write-set
///                 validation, atomic commit record groups

#include "algebra/join_planner.h"
#include "algebra/relational_ops.h"
#include "cells/cell.h"
#include "cells/cell_decomposition.h"
#include "cells/standard_encoding.h"
#include "complex/ccalc_ast.h"
#include "complex/ccalc_evaluator.h"
#include "complex/ccalc_parser.h"
#include "complex/cobject.h"
#include "complex/ctype.h"
#include "complex/range_restriction.h"
#include "constraints/closure_cache.h"
#include "constraints/dense_atom.h"
#include "constraints/dense_qe.h"
#include "constraints/eval_counters.h"
#include "constraints/generalized_relation.h"
#include "constraints/generalized_tuple.h"
#include "constraints/order_graph.h"
#include "constraints/relation_index.h"
#include "constraints/relation_shards.h"
#include "constraints/term.h"
#include "constraints/tuple_signature.h"
#include "core/bigint.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/rational.h"
#include "core/status.h"
#include "core/str_util.h"
#include "core/thread_pool.h"
#include "datalog/datalog_ast.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "datalog/view_maintenance.h"
#include "fo/analyzer.h"
#include "fo/ast.h"
#include "fo/cell_evaluator.h"
#include "fo/evaluator.h"
#include "fo/lexer.h"
#include "fo/linear_evaluator.h"
#include "fo/parser.h"
#include "fo/rewriter.h"
#include "gaporder/gap_relation.h"
#include "gaporder/gap_system.h"
#include "io/commands.h"
#include "io/database.h"
#include "io/text_format.h"
#include "linear/linear_atom.h"
#include "linear/linear_expr.h"
#include "linear/linear_relation.h"
#include "linear/linear_system.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "spatial/connectivity.h"
#include "spatial/interval.h"
#include "spatial/polygon.h"
#include "spatial/region.h"
#include "storage/binary_format.h"
#include "storage/buffer_pool.h"
#include "storage/file_io.h"
#include "storage/paged_relation.h"
#include "storage/record_store.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "txn/transaction_manager.h"

#endif  // DODB_DODB_H_
