#ifndef DODB_STORAGE_FILE_IO_H_
#define DODB_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace dodb {
namespace storage {

/// Thin POSIX file layer for the storage engine. Unbuffered on purpose:
/// every Append reaches the kernel before the call returns, so a crash (or
/// an emulated crash at a storage fault site) leaves exactly the prefix of
/// bytes the caller had appended — the property the WAL torn-record
/// detection and the crash-recovery tests are built on. Durability still
/// requires Sync (fsync); Append alone survives a process kill but not a
/// power cut.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens for appending; creates the file when absent. `truncate` drops
  /// any existing contents first.
  Status Open(const std::string& path, bool truncate = false);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  Status Append(const void* data, size_t size);
  /// fsync. Counts toward the engine-wide fsync counter.
  Status Sync();
  /// Truncates the file to `size` bytes (recovery chops torn WAL tails
  /// before appending resumes).
  Status Truncate(uint64_t size);
  Status Close();

  /// Bytes appended through this handle plus the size found at Open.
  uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

/// Random-access (pread/pwrite) file for the paged record store. Unlike
/// AppendFile there is no positional state: reads and writes name their
/// offset explicitly, so the buffer pool can write back and re-read pages
/// from any thread without coordinating a shared cursor. Writes reach the
/// kernel before the call returns (same discipline as AppendFile);
/// durability still requires Sync.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens read-write; creates the file when absent. `truncate` drops any
  /// existing contents first.
  Status Open(const std::string& path, bool truncate = false);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Reads exactly `size` bytes at `offset`; a short read (EOF inside the
  /// range) is an error — pages are written whole, so a partial page means
  /// truncation or corruption.
  Status ReadAt(uint64_t offset, void* buf, size_t size) const;
  /// Writes exactly `size` bytes at `offset`, extending the file as needed.
  Status WriteAt(uint64_t offset, const void* data, size_t size);
  /// fsync. Counts toward the engine-wide fsync counter.
  Status Sync();
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Whole-file read; NotFound when the file does not exist.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Atomic-on-POSIX rename followed by an fsync of the containing directory,
/// so the new name survives a crash.
Status RenameFileDurable(const std::string& from, const std::string& to);

/// fsync on a directory (publishes renames/creates/unlinks within it).
Status SyncDir(const std::string& dir);

Status CreateDirIfMissing(const std::string& dir);
bool FileExists(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
/// Names (not paths) of directory entries, sorted; missing dir is an error.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_FILE_IO_H_
