#ifndef DODB_STORAGE_BUFFER_POOL_H_
#define DODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "storage/file_io.h"

namespace dodb {
namespace storage {

/// Fixed page size of the paged record stores. Page numbers address
/// kPageSize-aligned extents of a spill file (page p lives at byte offset
/// p * kPageSize).
inline constexpr size_t kPageSize = 4096;

/// Capped cache of spill-file pages shared by every PagedRecordStore.
///
/// Frames hold whole pages; Fetch/Create return RAII-pinned handles, and a
/// pinned frame is never evicted or recycled. When the pool is over its
/// byte capacity, CLOCK sweeps the frame table: clean unpinned frames are
/// dropped, dirty unpinned frames are written back first — and the
/// writeback is ordered behind the WAL via pre_writeback_hook (set by the
/// shell to StorageEngine::SyncWal), so a page never reaches a spill file
/// ahead of the log records that justify the data it encodes.
///
/// Eviction and writeback are guard checkpoints (kPageEvict /
/// kPageWriteback on CurrentQueryGuard()): an armed fault trips *before*
/// the page bytes reach the file, emulating a crash mid-writeback. Spill
/// files are ephemeral caches — the snapshot + WAL remain the source of
/// truth — so recovery after such a crash is ordinary WAL replay.
///
/// All methods are thread-safe; shard-pair pool jobs fetch concurrently.
/// When every frame is pinned the pool allocates past its cap rather than
/// deadlock (capacity is a target, pins are correctness).
class BufferPool {
 public:
  /// The process-wide pool (shell \pagecache resizes it; benches construct
  /// private pools to sweep cache sizes in isolation).
  static BufferPool& Global();

  explicit BufferPool(uint64_t capacity_bytes = 64ull << 20);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a spill file; returned id keys Fetch/Create. The file must
  /// outlive its registration.
  uint64_t RegisterFile(RandomAccessFile* file);
  /// Drops every frame of `file_id` (writing dirty frames back when `flush`)
  /// and forgets the id. All of the file's pages must be unpinned.
  Status UnregisterFile(uint64_t file_id, bool flush);

  /// RAII pin on one resident page frame. Movable, not copyable; unpins on
  /// destruction. data() is stable while pinned.
  class Page {
   public:
    Page() = default;
    Page(BufferPool* pool, size_t frame, uint8_t* data)
        : pool_(pool), frame_(frame), data_(data) {}
    Page(Page&& other) noexcept { *this = std::move(other); }
    Page& operator=(Page&& other) noexcept;
    ~Page();
    Page(const Page&) = delete;
    Page& operator=(const Page&) = delete;

    bool valid() const { return pool_ != nullptr; }
    const uint8_t* data() const { return data_; }
    uint8_t* data() { return data_; }
    /// Marks the frame dirty; its bytes reach the file on eviction or
    /// FlushFile, after the pre-writeback hook runs.
    void MarkDirty();

   private:
    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    uint8_t* data_ = nullptr;
  };

  /// Pins the page, reading it from the file on a miss.
  Result<Page> Fetch(uint64_t file_id, uint64_t page_no);
  /// Pins a zeroed frame for a page about to be written for the first time
  /// (no read; an existing resident frame for the same page is zeroed and
  /// reused so stale bytes can never resurface through the free list).
  Result<Page> Create(uint64_t file_id, uint64_t page_no);

  /// Writes back every dirty frame of `file_id` (pre-writeback hook first).
  Status FlushFile(uint64_t file_id);

  /// Runs before any dirty page's bytes reach a spill file; the shell sets
  /// this to sync the WAL so log records precede derived page contents.
  void set_pre_writeback_hook(std::function<Status()> hook);

  /// Target cache size; shrinking evicts immediately (except pinned frames).
  void set_capacity_bytes(uint64_t bytes);
  uint64_t capacity_bytes() const;

  uint64_t resident_bytes() const;
  size_t pinned_frames() const;

 private:
  struct Frame;
  struct Impl;

  void Unpin(size_t frame);
  void MarkFrameDirty(size_t frame);
  /// Evicts until resident <= capacity or nothing evictable remains.
  /// Caller holds the pool mutex.
  Status EvictForSpaceLocked(std::unique_lock<std::mutex>& lock);
  Status WritebackLocked(Frame& f, std::unique_lock<std::mutex>& lock);

  std::unique_ptr<Impl> impl_;

  friend class Page;
};

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_BUFFER_POOL_H_
