#include "storage/wal.h"

#include <cstring>

#include "constraints/eval_counters.h"
#include "core/str_util.h"
#include "storage/binary_format.h"

namespace dodb {
namespace storage {

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(record.type));
  w.PutString(record.name);
  switch (record.type) {
    case WalRecordType::kCreateRelation:
      w.PutVarint(static_cast<uint64_t>(record.arity));
      break;
    case WalRecordType::kDropRelation:
      break;
    case WalRecordType::kSetRelation:
    case WalRecordType::kInsertTuples:
      w.PutRelationPayload(record.relation);
      break;
    case WalRecordType::kCreateView:
      w.PutString(record.text);
      break;
    case WalRecordType::kDropView:
      break;
    case WalRecordType::kTxnCommit: {
      w.PutVarint(record.txn_generation);
      w.PutVarint(record.group.size());
      for (const WalRecord& op : record.group) {
        DODB_CHECK_MSG(op.type != WalRecordType::kTxnCommit,
                       "nested kTxnCommit record");
        std::vector<uint8_t> sub = EncodeWalRecord(op);
        w.PutVarint(sub.size());
        w.PutBytes(sub.data(), sub.size());
      }
      break;
    }
  }
  return w.Take();
}

namespace {

// `allow_group` is true only for top-level records: a kTxnCommit nested
// inside another kTxnCommit is rejected as corruption.
Result<WalRecord> DecodeWalRecordImpl(const uint8_t* data, size_t size,
                                      bool allow_group) {
  ByteReader reader(data, size);
  uint8_t type = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&type));
  if (type < 1 || type > 7 || (type == 7 && !allow_group)) {
    return Status::InvalidArgument(
        StrCat("bad WAL record type ", static_cast<int>(type)));
  }
  WalRecord record;
  record.type = static_cast<WalRecordType>(type);
  DODB_RETURN_IF_ERROR(reader.GetString(&record.name));
  switch (record.type) {
    case WalRecordType::kCreateRelation: {
      uint64_t arity = 0;
      DODB_RETURN_IF_ERROR(reader.GetVarint(&arity));
      if (arity > 1024) {
        return Status::InvalidArgument(StrCat("implausible arity ", arity));
      }
      record.arity = static_cast<int>(arity);
      break;
    }
    case WalRecordType::kDropRelation:
      break;
    case WalRecordType::kSetRelation:
    case WalRecordType::kInsertTuples:
      DODB_RETURN_IF_ERROR(reader.GetRelationPayload(&record.relation));
      break;
    case WalRecordType::kCreateView:
      DODB_RETURN_IF_ERROR(reader.GetString(&record.text));
      break;
    case WalRecordType::kDropView:
      break;
    case WalRecordType::kTxnCommit: {
      DODB_RETURN_IF_ERROR(reader.GetVarint(&record.txn_generation));
      uint64_t count = 0;
      DODB_RETURN_IF_ERROR(reader.GetVarint(&count));
      if (count > size) {
        return Status::InvalidArgument(
            StrCat("implausible txn group size ", count));
      }
      record.group.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t sub_len = 0;
        DODB_RETURN_IF_ERROR(reader.GetVarint(&sub_len));
        if (sub_len > reader.remaining()) {
          return Status::InvalidArgument(
              StrCat("txn sub-record ", i, " overruns the group"));
        }
        Result<WalRecord> sub = DecodeWalRecordImpl(
            data + reader.position(), sub_len, /*allow_group=*/false);
        if (!sub.ok()) return sub.status();
        DODB_RETURN_IF_ERROR(reader.Skip(sub_len));
        record.group.push_back(std::move(sub).value());
      }
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        StrCat("WAL record has ", reader.remaining(), " trailing bytes"));
  }
  return record;
}

}  // namespace

Result<WalRecord> DecodeWalRecord(const uint8_t* data, size_t size) {
  return DecodeWalRecordImpl(data, size, /*allow_group=*/true);
}

Status WalWriter::Create(const std::string& path, uint32_t generation,
                         uint32_t segment_index) {
  DODB_RETURN_IF_ERROR(file_.Open(path, /*truncate=*/true));
  ByteWriter header;
  header.PutBytes(kWalMagic, sizeof(kWalMagic));
  header.PutU32(kWalVersion);
  header.PutU32(generation);
  header.PutU32(segment_index);
  header.PutU32(Crc32(header.data().data(), header.size()));
  DODB_RETURN_IF_ERROR(file_.Append(header.data().data(), header.size()));
  return file_.Sync();
}

Status WalWriter::OpenForAppend(const std::string& path,
                                uint64_t valid_bytes) {
  DODB_RETURN_IF_ERROR(file_.Open(path, /*truncate=*/false));
  if (file_.size() > valid_bytes) {
    DODB_RETURN_IF_ERROR(file_.Truncate(valid_bytes));
    DODB_RETURN_IF_ERROR(file_.Sync());
  }
  return Status::Ok();
}

Status WalWriter::Append(const std::vector<uint8_t>& payload,
                         QueryGuard* guard) {
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.data();
  // Split the write around the fault site: a trip leaves the length prefix
  // plus roughly half the payload on disk — the torn record shape that
  // recovery's truncation path must detect.
  size_t first = 8 + payload.size() / 2;
  DODB_RETURN_IF_ERROR(file_.Append(bytes.data(), first));
  if (guard != nullptr && !guard->Checkpoint(GuardSite::kWalAppend)) {
    return guard->status();
  }
  DODB_RETURN_IF_ERROR(
      file_.Append(bytes.data() + first, bytes.size() - first));
  EvalCounters::AddWalRecordsAppended(1);
  return Status::Ok();
}

Status WalWriter::Sync(QueryGuard* guard) {
  DODB_RETURN_IF_ERROR(file_.Sync());
  if (guard != nullptr && !guard->Checkpoint(GuardSite::kWalSync)) {
    return guard->status();
  }
  return Status::Ok();
}

Result<WalSegmentContents> ReadWalSegment(const std::string& path,
                                          uint32_t expected_generation,
                                          uint32_t expected_segment_index,
                                          QueryGuard* guard) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::vector<uint8_t>& buf = bytes.value();

  WalSegmentContents contents;
  // Header checks. A short or checksum-broken header is the crash state of
  // an interrupted segment creation: report an empty log truncated at zero
  // rather than an error.
  if (buf.size() < kWalHeaderBytes ||
      std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    contents.truncated = true;
    return contents;
  }
  ByteReader header(buf.data() + sizeof(kWalMagic),
                    kWalHeaderBytes - sizeof(kWalMagic));
  uint32_t version = 0, generation = 0, segment_index = 0, header_crc = 0;
  DODB_RETURN_IF_ERROR(header.GetU32(&version));
  DODB_RETURN_IF_ERROR(header.GetU32(&generation));
  DODB_RETURN_IF_ERROR(header.GetU32(&segment_index));
  DODB_RETURN_IF_ERROR(header.GetU32(&header_crc));
  if (header_crc != Crc32(buf.data(), kWalHeaderBytes - 4)) {
    contents.truncated = true;
    return contents;
  }
  if (version != kWalVersion) {
    return Status::InvalidArgument(
        StrCat("WAL segment '", path, "': unsupported version ", version));
  }
  if (generation != expected_generation ||
      segment_index != expected_segment_index) {
    return Status::InvalidArgument(
        StrCat("WAL segment '", path, "' labeled generation ", generation,
               " index ", segment_index, ", expected ", expected_generation,
               "/", expected_segment_index, " (misplaced file)"));
  }

  GuardTicker ticker(guard, GuardSite::kWalReplay, /*stride=*/16);
  size_t pos = kWalHeaderBytes;
  while (pos < buf.size()) {
    if (!ticker.Tick()) return guard->status();
    if (buf.size() - pos < 8) break;  // torn length/crc prefix
    ByteReader frame(buf.data() + pos, 8);
    uint32_t length = 0, crc = 0;
    DODB_RETURN_IF_ERROR(frame.GetU32(&length));
    DODB_RETURN_IF_ERROR(frame.GetU32(&crc));
    if (length == 0 || length > buf.size() - pos - 8) break;  // torn payload
    const uint8_t* payload = buf.data() + pos + 8;
    if (Crc32(payload, length) != crc) break;  // corrupt payload
    Result<WalRecord> record = DecodeWalRecord(payload, length);
    if (!record.ok()) break;  // corrupt but checksum-colliding payload
    contents.records.push_back(std::move(record).value());
    pos += 8 + length;
  }
  contents.valid_bytes = pos;
  contents.truncated = pos < buf.size();
  // When the dropped tail still carries its first payload byte, classify it:
  // a type tag of kTxnCommit means a transaction's commit record never made
  // it to disk intact — the whole write set vanishes by the group's
  // all-or-nothing framing, and recovery surfaces a typed warning instead of
  // truncating silently.
  if (contents.truncated && buf.size() - pos >= 9 &&
      buf[pos + 8] == static_cast<uint8_t>(WalRecordType::kTxnCommit)) {
    contents.torn_txn_tail = true;
  }
  return contents;
}

}  // namespace storage
}  // namespace dodb
