#ifndef DODB_STORAGE_PAGED_RELATION_H_
#define DODB_STORAGE_PAGED_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "constraints/paged_source.h"
#include "core/status.h"
#include "storage/record_store.h"

namespace dodb {
namespace storage {

/// PagedTupleSource over runs parked in a RecordStore: each run is
/// kRunTuples consecutive tuples of the canonical vector, encoded with the
/// snapshot codec into one record. The run directory keys each record by
/// the signature hash of its first tuple; FetchRun recomputes the hash
/// after decoding and rejects a mismatch, so a record-id mixup (the wrong
/// run coming back) is caught even though every page already passed its
/// CRC. Records are freed when the source dies.
class SpilledTupleSource : public PagedTupleSource {
 public:
  struct RunEntry {
    uint64_t record_id = 0;
    size_t begin = 0;        // first tuple position of the run
    size_t signature_key = 0;  // CachedSignature().hash of the first tuple
  };

  SpilledTupleSource(std::shared_ptr<RecordStore> store, int arity,
                     size_t tuple_count, std::vector<RunEntry> runs,
                     uint64_t payload_bytes);
  ~SpilledTupleSource() override;

  int arity() const override { return arity_; }
  size_t tuple_count() const override { return tuple_count_; }
  size_t run_count() const override { return runs_.size(); }
  size_t RunBegin(size_t run) const override { return runs_[run].begin; }
  Status FetchRun(size_t run,
                  std::vector<GeneralizedTuple>* out) const override;
  uint64_t approx_bytes() const override { return payload_bytes_; }

  /// Tuples per run (the streaming granularity). Small enough that one run
  /// decodes in microseconds; large enough to amortize the record header
  /// and the run-cache lock.
  static constexpr size_t kRunTuples = 16;

 private:
  const std::shared_ptr<RecordStore> store_;
  const int arity_;
  const size_t tuple_count_;
  const std::vector<RunEntry> runs_;
  const uint64_t payload_bytes_;
};

/// Spills resident relations into a RecordStore and hands back their paged
/// twins. One pager per database directory: every spilled relation of the
/// catalog shares its store (and hence, for the paged backend, one spill
/// file and the global buffer pool's cache budget).
class RelationPager {
 public:
  /// Pager over a paged (out-of-core) record store backed by the spill
  /// file at `path`, served through `pool`.
  static Result<std::unique_ptr<RelationPager>> OpenPaged(
      const std::string& path, BufferPool* pool);
  /// Pager over the resident MemoryRecordStore backend (the interface
  /// without the I/O — what `\page <rel> off` degenerates to).
  static std::unique_ptr<RelationPager> InMemory();

  /// Encodes `rel`'s tuples into the store and returns the paged twin:
  /// structurally identical (same canonical vector, position by position),
  /// sharing `rel`'s prebuilt RelationIndex, with the atom payload
  /// out-of-core. Spilling an empty or already-paged relation returns a
  /// plain copy.
  Result<GeneralizedRelation> Spill(const GeneralizedRelation& rel);

  RecordStore& store() { return *store_; }

 private:
  explicit RelationPager(std::shared_ptr<RecordStore> store)
      : store_(std::move(store)) {}

  std::shared_ptr<RecordStore> store_;
};

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_PAGED_RELATION_H_
