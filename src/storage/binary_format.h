#ifndef DODB_STORAGE_BINARY_FORMAT_H_
#define DODB_STORAGE_BINARY_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {
namespace storage {

/// Low-level binary codec shared by the snapshot and WAL formats.
///
/// Primitives (all little-endian):
///   u8 / u32          fixed width
///   varint            LEB128-encoded uint64 (7 bits per byte, msb = more)
///   bytes             varint length prefix + raw bytes
///   BigInt            u8 sign (0 / 1 / 2 for zero / + / -) + varint limb
///                     count + base-2^32 limbs as fixed u32s
///   Rational          BigInt numerator + BigInt denominator
///   Term              u8 tag (0 var / 1 const) + varint index | Rational
///   DenseAtom         Term lhs + u8 RelOp + Term rhs
///   GeneralizedTuple  varint atom count + atoms (arity carried by the
///                     enclosing relation header)
///   relation payload  varint arity + varint tuple count + tuples
///
/// Every decoder is bounds-checked: truncated or over-length input yields a
/// clean InvalidArgument Status, never a read past the buffer. Integrity is
/// the caller's job — the snapshot and WAL formats wrap payloads in CRC32
/// frames, so a decoder only ever sees bytes that already passed a checksum
/// (decode errors after a valid CRC indicate version skew or a bug).

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum stamped on every
/// snapshot relation payload and WAL record. `seed` chains incremental
/// updates: Crc32(b, Crc32(a)) == Crc32(a ++ b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Append-only encoder over a growable byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutVarint(uint64_t v);
  void PutBytes(const void* data, size_t size);
  void PutString(const std::string& s);
  void PutBigInt(const BigInt& v);
  void PutRational(const Rational& v);
  void PutTerm(const Term& t);
  void PutAtom(const DenseAtom& a);
  void PutTuple(const GeneralizedTuple& t);
  /// The full relation payload (arity + tuples) of the snapshot format.
  void PutRelationPayload(const GeneralizedRelation& rel);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked decoder over a borrowed byte range.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetVarint(uint64_t* v);
  Status GetString(std::string* s);
  Status GetBigInt(BigInt* v);
  Status GetRational(Rational* v);
  Status GetTerm(Term* t);
  Status GetAtom(DenseAtom* a);
  /// Decodes a tuple of the given arity, rejecting atoms whose variable
  /// indices fall outside it.
  Status GetTuple(int arity, GeneralizedTuple* t);
  Status GetRelationPayload(GeneralizedRelation* rel);
  /// Advances past `n` bytes (callers that decode a region out-of-band).
  Status Skip(size_t n);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Truncated(const char* what);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_BINARY_FORMAT_H_
