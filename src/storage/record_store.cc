#include "storage/record_store.h"

#include <cstring>
#include <utility>

#include "constraints/eval_counters.h"
#include "core/str_util.h"
#include "storage/binary_format.h"

namespace dodb {
namespace storage {

namespace {

void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Result<uint64_t> MemoryRecordStore::Put(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  records_.emplace(id, std::vector<uint8_t>(p, p + size));
  payload_bytes_ += size;
  return id;
}

Status MemoryRecordStore::Get(uint64_t id, std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound(StrCat("record store: no record ", id));
  }
  *out = it->second;
  return Status::Ok();
}

Status MemoryRecordStore::Free(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound(StrCat("record store: no record ", id));
  }
  payload_bytes_ -= it->second.size();
  records_.erase(it);
  return Status::Ok();
}

uint64_t MemoryRecordStore::payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return payload_bytes_;
}

Result<std::unique_ptr<PagedRecordStore>> PagedRecordStore::Open(
    const std::string& path, BufferPool* pool) {
  DODB_CHECK_MSG(pool != nullptr, "PagedRecordStore::Open without a pool");
  std::unique_ptr<PagedRecordStore> store(new PagedRecordStore());
  // Spill files are ephemeral caches: always start empty, never recover
  // contents from a previous process (the snapshot + WAL are authoritative).
  DODB_RETURN_IF_ERROR(store->file_.Open(path, /*truncate=*/true));
  store->pool_ = pool;
  store->file_id_ = pool->RegisterFile(&store->file_);
  return store;
}

PagedRecordStore::~PagedRecordStore() {
  if (pool_ != nullptr) {
    // Dirty pages of an ephemeral cache need not reach the disk on the way
    // out; drop them.
    (void)pool_->UnregisterFile(file_id_, /*flush=*/false);
  }
  (void)file_.Close();
}

uint64_t PagedRecordStore::AllocPageLocked() {
  if (!free_pages_.empty()) {
    uint64_t page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  return next_page_num_++;
}

Result<uint64_t> PagedRecordStore::Put(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t chunks = size == 0 ? 1 : (size + kPagePayload - 1) / kPagePayload;
  std::vector<uint64_t> pages(chunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < chunks; ++i) pages[i] = AllocPageLocked();
    payload_bytes_ += size;
  }
  size_t left = size;
  for (size_t i = 0; i < chunks; ++i) {
    size_t chunk = left < kPagePayload ? left : kPagePayload;
    auto page = pool_->Create(file_id_, pages[i]);
    if (!page.ok()) {
      // Roll the allocation back so a guard trip mid-Put leaks no pages.
      std::lock_guard<std::mutex> lock(mu_);
      payload_bytes_ -= size;
      for (uint64_t page_no : pages) free_pages_.push_back(page_no);
      return page.status();
    }
    uint8_t* buf = page.value().data();
    StoreU32(buf + 4, static_cast<uint32_t>(chunk));
    StoreU32(buf + 8, i + 1 < chunks ? static_cast<uint32_t>(pages[i + 1])
                                     : kNoPage);
    if (chunk > 0) std::memcpy(buf + kPageHeaderSize, p, chunk);
    StoreU32(buf, Crc32(buf + 4, kPageSize - 4));
    page.value().MarkDirty();
    p += chunk;
    left -= chunk;
  }
  EvalCounters::AddPagedSpillBytes(size);
  return pages[0];
}

Status PagedRecordStore::ReadPage(uint64_t page_no,
                                  std::vector<uint8_t>* payload,
                                  uint32_t* next_page) const {
  auto page = pool_->Fetch(file_id_, page_no);
  if (!page.ok()) return page.status();
  const uint8_t* buf = page.value().data();
  uint32_t stored_crc = LoadU32(buf);
  uint32_t actual_crc = Crc32(buf + 4, kPageSize - 4);
  if (stored_crc != actual_crc) {
    return Status::Internal(
        StrCat("record store '", file_.path(), "': page ", page_no,
               " checksum mismatch (stored ", stored_crc, ", computed ",
               actual_crc, ")"));
  }
  uint32_t len = LoadU32(buf + 4);
  if (len > kPagePayload) {
    return Status::Internal(
        StrCat("record store '", file_.path(), "': page ", page_no,
               " payload length ", len, " exceeds page capacity"));
  }
  *next_page = LoadU32(buf + 8);
  payload->assign(buf + kPageHeaderSize, buf + kPageHeaderSize + len);
  return Status::Ok();
}

Status PagedRecordStore::Get(uint64_t id, std::vector<uint8_t>* out) const {
  out->clear();
  uint64_t limit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    limit = next_page_num_;
  }
  if (id >= limit) {
    return Status::NotFound(StrCat("record store: no record ", id));
  }
  uint64_t page_no = id;
  std::vector<uint8_t> payload;
  // A chain can visit each allocated page at most once; more hops means the
  // next-pointers cycle (corruption the per-page CRC cannot see).
  for (uint64_t hops = 0; hops <= limit; ++hops) {
    uint32_t next = kNoPage;
    DODB_RETURN_IF_ERROR(ReadPage(page_no, &payload, &next));
    out->insert(out->end(), payload.begin(), payload.end());
    if (next == kNoPage) return Status::Ok();
    if (next >= limit) {
      return Status::Internal(
          StrCat("record store '", file_.path(), "': page ", page_no,
                 " links past the allocated range"));
    }
    page_no = next;
  }
  return Status::Internal(StrCat("record store '", file_.path(),
                                 "': record ", id, " page chain cycles"));
}

Status PagedRecordStore::Free(uint64_t id) {
  uint64_t limit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    limit = next_page_num_;
  }
  if (id >= limit) {
    return Status::NotFound(StrCat("record store: no record ", id));
  }
  uint64_t page_no = id;
  std::vector<uint64_t> chain;
  uint64_t freed_bytes = 0;
  std::vector<uint8_t> payload;
  for (uint64_t hops = 0; hops <= limit; ++hops) {
    uint32_t next = kNoPage;
    DODB_RETURN_IF_ERROR(ReadPage(page_no, &payload, &next));
    chain.push_back(page_no);
    freed_bytes += payload.size();
    if (next == kNoPage) {
      std::lock_guard<std::mutex> lock(mu_);
      payload_bytes_ -= freed_bytes;
      free_pages_.insert(free_pages_.end(), chain.begin(), chain.end());
      return Status::Ok();
    }
    page_no = next;
  }
  return Status::Internal(StrCat("record store '", file_.path(),
                                 "': record ", id, " page chain cycles"));
}

Status PagedRecordStore::Flush() { return pool_->FlushFile(file_id_); }

uint64_t PagedRecordStore::payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return payload_bytes_;
}

uint64_t PagedRecordStore::allocated_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_page_num_;
}

}  // namespace storage
}  // namespace dodb
