#include "storage/snapshot.h"

#include <cstring>

#include "constraints/eval_counters.h"
#include "core/str_util.h"
#include "storage/binary_format.h"
#include "storage/file_io.h"

namespace dodb {
namespace storage {

namespace {

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::InvalidArgument(
      StrCat("snapshot '", path, "' corrupt: ", why));
}

}  // namespace

Status WriteSnapshotFile(const Database& db, const std::string& path,
                         QueryGuard* guard) {
  const std::string tmp = path + ".tmp";
  AppendFile file;
  DODB_RETURN_IF_ERROR(file.Open(tmp, /*truncate=*/true));

  ByteWriter header;
  header.PutBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.PutU32(kSnapshotVersion);
  header.PutU32(static_cast<uint32_t>(db.relation_count()));
  header.PutU32(Crc32(header.data().data(), header.size()));
  DODB_RETURN_IF_ERROR(file.Append(header.data().data(), header.size()));

  // One record per relation, appended as soon as it is serialized: a guard
  // trip mid-loop flushes whatever bytes the tuple loop produced so far, so
  // the .tmp on disk is the torn file a killed process would have left.
  GuardTicker ticker(guard, GuardSite::kSnapshotWrite, /*stride=*/64);
  for (const std::string& name : db.RelationNames()) {
    const GeneralizedRelation* rel = db.FindRelation(name);
    ByteWriter payload;
    payload.PutVarint(static_cast<uint64_t>(rel->arity()));
    payload.PutVarint(rel->tuple_count());
    bool alive = true;
    for (const GeneralizedTuple& tuple : rel->tuples()) {
      if (!ticker.Tick()) {
        alive = false;
        break;
      }
      payload.PutTuple(tuple);
    }
    ByteWriter record;
    record.PutString(name);
    record.PutVarint(payload.size());
    uint32_t crc = Crc32(name.data(), name.size());
    crc = Crc32(payload.data().data(), payload.size(), crc);
    record.PutBytes(payload.data().data(), payload.size());
    record.PutU32(crc);
    DODB_RETURN_IF_ERROR(file.Append(record.data().data(), record.size()));
    if (!alive) return guard->status();
  }

  DODB_RETURN_IF_ERROR(file.Sync());
  if (guard != nullptr &&
      !guard->Checkpoint(GuardSite::kSnapshotRename)) {
    // Emulated crash after the temp file is durable but before the rename
    // publishes it: the complete .tmp stays, the final name is untouched.
    return guard->status();
  }
  DODB_RETURN_IF_ERROR(file.Close());
  DODB_RETURN_IF_ERROR(RenameFileDurable(tmp, path));
  EvalCounters::AddSnapshotsWritten(1);
  return Status::Ok();
}

Result<Database> LoadSnapshotFile(const std::string& path,
                                  QueryGuard* guard) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::vector<uint8_t>& buf = bytes.value();

  if (buf.size() < 20) return Corrupt(path, "shorter than the 20-byte header");
  if (std::memcmp(buf.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  ByteReader reader(buf.data() + sizeof(kSnapshotMagic),
                    buf.size() - sizeof(kSnapshotMagic));
  uint32_t version = 0, relation_count = 0, header_crc = 0;
  DODB_RETURN_IF_ERROR(reader.GetU32(&version));
  DODB_RETURN_IF_ERROR(reader.GetU32(&relation_count));
  DODB_RETURN_IF_ERROR(reader.GetU32(&header_crc));
  if (header_crc != Crc32(buf.data(), 16)) {
    return Corrupt(path, "header checksum mismatch");
  }
  if (version != kSnapshotVersion) {
    return Corrupt(path, StrCat("unsupported format version ", version));
  }

  Database db;
  GuardTicker ticker(guard, GuardSite::kWalReplay, /*stride=*/64);
  for (uint32_t i = 0; i < relation_count; ++i) {
    std::string name;
    uint64_t payload_len = 0;
    DODB_RETURN_IF_ERROR(reader.GetString(&name));
    DODB_RETURN_IF_ERROR(reader.GetVarint(&payload_len));
    if (payload_len + 4 > reader.remaining()) {
      return Corrupt(path, StrCat("relation '", name, "' payload truncated"));
    }
    const uint8_t* payload =
        buf.data() + sizeof(kSnapshotMagic) + reader.position();
    uint32_t crc = Crc32(name.data(), name.size());
    crc = Crc32(payload, static_cast<size_t>(payload_len), crc);
    DODB_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(payload_len)));
    uint32_t stored_crc = 0;
    DODB_RETURN_IF_ERROR(reader.GetU32(&stored_crc));
    if (stored_crc != crc) {
      return Corrupt(path, StrCat("relation '", name, "' checksum mismatch"));
    }

    // Only checksum-clean bytes reach the decoder (the binary_format
    // contract); a decode error past this point is version skew or a bug.
    ByteReader body(payload, static_cast<size_t>(payload_len));
    uint64_t arity = 0, tuple_count = 0;
    DODB_RETURN_IF_ERROR(body.GetVarint(&arity));
    if (arity > 1024) {
      return Corrupt(path, StrCat("implausible arity ", arity));
    }
    DODB_RETURN_IF_ERROR(body.GetVarint(&tuple_count));
    if (tuple_count > body.remaining()) {
      return Corrupt(path, StrCat("relation '", name, "' tuple count ",
                                  tuple_count, " exceeds payload"));
    }
    std::vector<GeneralizedTuple> tuples;
    tuples.reserve(static_cast<size_t>(tuple_count));
    for (uint64_t t = 0; t < tuple_count; ++t) {
      if (!ticker.Tick()) return guard->status();
      GeneralizedTuple tuple(static_cast<int>(arity));
      DODB_RETURN_IF_ERROR(body.GetTuple(static_cast<int>(arity), &tuple));
      tuples.push_back(std::move(tuple));
    }
    if (!body.AtEnd()) {
      return Corrupt(path, StrCat("relation '", name, "' has ",
                                  body.remaining(), " trailing payload bytes"));
    }
    if (guard != nullptr &&
        !guard->AccountBytes(GuardSite::kWalReplay, payload_len)) {
      return guard->status();
    }
    DODB_RETURN_IF_ERROR(db.AddRelation(
        name, GeneralizedRelation::FromCanonicalTuples(
                  static_cast<int>(arity), std::move(tuples))));
  }
  if (!reader.AtEnd()) {
    return Corrupt(path, StrCat(reader.remaining(), " trailing bytes"));
  }
  return db;
}

}  // namespace storage
}  // namespace dodb
