#ifndef DODB_STORAGE_SNAPSHOT_H_
#define DODB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "core/query_guard.h"
#include "io/database.h"

namespace dodb {
namespace storage {

/// Versioned, checksummed binary snapshot of a whole catalog.
///
/// File layout (DESIGN.md §11):
///   magic[8]  "DODBSNP1"
///   u32       format version (kSnapshotVersion)
///   u32       relation count
///   u32       CRC32 of the 16 header bytes above
///   per relation, in catalog (name) order:
///     varint name length + name bytes
///     varint payload length + payload (binary_format relation payload)
///     u32    CRC32 of name bytes ++ payload bytes
///   (end of file exactly here; trailing bytes are an error)
///
/// Writes are atomic: the snapshot is assembled at `path`.tmp, fsynced, and
/// renamed over `path` — a reader never observes a half-written snapshot
/// under the final name. Serialization walks the relation's COW tuple
/// vector in place (copying a GeneralizedRelation is O(1)), so producing a
/// checkpoint copy of the catalog never deep-copies tuple data.
///
/// Guard wiring: the tuple loop ticks `guard` at GuardSite::kSnapshotWrite
/// and the final pre-rename checkpoint is GuardSite::kSnapshotRename, so a
/// snapshot of a huge database is cancellable / budget-bounded, and the
/// fault-injection tests can emulate a crash mid-write (torn .tmp left
/// behind, final name untouched) or pre-rename (complete .tmp left behind,
/// final name untouched).

inline constexpr char kSnapshotMagic[8] = {'D', 'O', 'D', 'B',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Writes `db` as a binary snapshot at `path` (via `path`.tmp + rename).
/// On a guard trip the partial .tmp is deliberately left on disk — it is
/// the crash state recovery must tolerate — and the guard's status is
/// returned. `guard` may be null.
Status WriteSnapshotFile(const Database& db, const std::string& path,
                         QueryGuard* guard = nullptr);

/// Loads a snapshot written by WriteSnapshotFile. Any header, framing or
/// CRC violation is a clean InvalidArgument (NotFound when the file is
/// absent); no partial database escapes. The per-tuple loop ticks `guard`
/// at GuardSite::kWalReplay — snapshot load is the first half of recovery
/// replay — and accounts loaded tuple bytes against the guard's memory
/// budget.
Result<Database> LoadSnapshotFile(const std::string& path,
                                  QueryGuard* guard = nullptr);

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_SNAPSHOT_H_
