#include "storage/storage_engine.h"

#include <chrono>
#include <cstdio>

#include "algebra/relational_ops.h"
#include "constraints/eval_counters.h"
#include "core/fault_injection.h"
#include "core/str_util.h"
#include "storage/snapshot.h"

namespace dodb {
namespace storage {

namespace {

std::string Pad6(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06u", v);
  return buf;
}

bool ParseUint32(std::string_view text, uint32_t* value) {
  if (text.empty() || text.size() > 9) return false;
  uint32_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *value = v;
  return true;
}

// Parses "snapshot-<gen>.snap"; false for anything else.
bool ParseSnapshotName(std::string_view name, uint32_t* generation) {
  if (!name.starts_with("snapshot-") || !name.ends_with(".snap")) return false;
  return ParseUint32(name.substr(9, name.size() - 9 - 5), generation);
}

// Parses "wal-<gen>-<segment>.wal"; false for anything else.
bool ParseWalName(std::string_view name, uint32_t* generation,
                  uint32_t* segment) {
  if (!name.starts_with("wal-") || !name.ends_with(".wal")) return false;
  std::string_view middle = name.substr(4, name.size() - 4 - 4);
  size_t dash = middle.find('-');
  if (dash == std::string_view::npos) return false;
  return ParseUint32(middle.substr(0, dash), generation) &&
         ParseUint32(middle.substr(dash + 1), segment);
}

}  // namespace

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kWal:
      return "wal";
    case DurabilityMode::kWalCheckpoint:
      return "wal+checkpoint";
  }
  return "?";
}

StorageEngine::StorageEngine(std::string dir, Database* db,
                             StorageOptions options)
    : dir_(std::move(dir)), db_(db), options_(std::move(options)) {}

StorageEngine::~StorageEngine() {
  if (!closed_) Close();  // best effort; status visible via failure()
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, Database* db, StorageOptions options) {
  DODB_CHECK(db != nullptr);
  // Startup check: a tagged site missing from kAllFaultSites would let the
  // chaos sweeps silently skip it.
  DODB_RETURN_IF_ERROR(ValidateFaultSiteRegistry());
  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(dir, db, std::move(options)));
  engine->guard_ = std::make_unique<QueryGuard>(engine->options_.limits);
  DODB_RETURN_IF_ERROR(
      ArmFaultFromSpec(engine->guard_.get(), engine->options_.fault_spec));
  if (engine->options_.mode != DurabilityMode::kOff) {
    DODB_RETURN_IF_ERROR(engine->Recover());
  }
  return engine;
}

std::string StorageEngine::SnapshotPath(uint32_t generation) const {
  return StrCat(dir_, "/snapshot-", Pad6(generation), ".snap");
}

std::string StorageEngine::WalPath(uint32_t generation,
                                   uint32_t segment) const {
  return StrCat(dir_, "/wal-", Pad6(generation), "-", Pad6(segment), ".wal");
}

Status StorageEngine::Recover() {
  const auto start = std::chrono::steady_clock::now();
  DODB_RETURN_IF_ERROR(CreateDirIfMissing(dir_));
  Result<std::vector<std::string>> names = ListDir(dir_);
  if (!names.ok()) return names.status();

  // Newest snapshot generation wins; a WAL from a newer generation than any
  // snapshot would mean the snapshot vanished (checkpoints write the
  // snapshot before the first WAL record of its generation), which is loss,
  // not a crash state — fail loudly.
  bool have_snapshot = false;
  uint32_t max_wal_generation = 0;
  for (const std::string& name : names.value()) {
    uint32_t generation = 0, segment = 0;
    if (ParseSnapshotName(name, &generation)) {
      have_snapshot = true;
      generation_ = std::max(generation_, generation);
    } else if (ParseWalName(name, &generation, &segment)) {
      max_wal_generation = std::max(max_wal_generation, generation);
    }
  }
  if (!have_snapshot) generation_ = 0;
  if (max_wal_generation > generation_) {
    return Status::InvalidArgument(
        StrCat("storage dir '", dir_, "': WAL generation ",
               max_wal_generation, " has no snapshot (newest snapshot ",
               have_snapshot ? StrCat("is ", generation_) : "missing",
               "); refusing to guess"));
  }

  if (have_snapshot) {
    Result<Database> loaded =
        LoadSnapshotFile(SnapshotPath(generation_), guard_.get());
    if (!loaded.ok()) return loaded.status();
    *db_ = std::move(loaded).value();
    recovery_.snapshot_loaded = true;
  } else {
    *db_ = Database();
  }
  recovery_.generation = generation_;

  // Replay this generation's segments in index order. The first torn or
  // corrupt tail ends the log: chop it and drop any later segments (they
  // are unreachable past the hole).
  uint32_t segment = 0;
  uint64_t last_valid_bytes = 0;
  bool have_segment = false;
  while (FileExists(WalPath(generation_, segment))) {
    Result<WalSegmentContents> contents = ReadWalSegment(
        WalPath(generation_, segment), generation_, segment, guard_.get());
    if (!contents.ok()) return contents.status();
    ++recovery_.segments_scanned;
    for (const WalRecord& record : contents.value().records) {
      DODB_RETURN_IF_ERROR(ApplyRecord(record));
      ++recovery_.records_replayed;
      EvalCounters::AddWalRecordsReplayed(1);
    }
    have_segment = true;
    last_valid_bytes = contents.value().valid_bytes;
    wal_bytes_ += contents.value().valid_bytes;
    segment_index_ = segment;
    if (contents.value().truncated) {
      recovery_.wal_truncated = true;
      if (contents.value().torn_txn_tail) {
        recovery_.torn_txn_tail = true;
        recovery_.warning = StrCat(
            "WAL tail of segment ", segment, " held an unfinished ",
            "transaction commit; its write set was discarded (the commit ",
            "never completed)");
      }
      for (uint32_t later = segment + 1;
           FileExists(WalPath(generation_, later)); ++later) {
        DODB_RETURN_IF_ERROR(
            RemoveFileIfExists(WalPath(generation_, later)));
      }
      break;
    }
    ++segment;
  }

  // Reopen the tail segment for appending (chopping any torn suffix), or
  // start the generation's first segment. A segment whose header itself was
  // torn is recreated from scratch.
  if (have_segment && last_valid_bytes >= kWalHeaderBytes) {
    DODB_RETURN_IF_ERROR(writer_.OpenForAppend(
        WalPath(generation_, segment_index_), last_valid_bytes));
  } else {
    DODB_RETURN_IF_ERROR(writer_.Create(WalPath(generation_, segment_index_),
                                        generation_, segment_index_));
    wal_bytes_ += kWalHeaderBytes - last_valid_bytes;
  }

  // Retire files recovery will never read again: older generations and
  // leftover temp files from an interrupted checkpoint.
  for (const std::string& name : names.value()) {
    uint32_t generation = 0, segment_no = 0;
    bool stale =
        (ParseSnapshotName(name, &generation) && generation < generation_) ||
        (ParseWalName(name, &generation, &segment_no) &&
         generation < generation_) ||
        name.ends_with(".tmp");
    if (stale) {
      DODB_RETURN_IF_ERROR(RemoveFileIfExists(StrCat(dir_, "/", name)));
    }
  }
  DODB_RETURN_IF_ERROR(SyncDir(dir_));

  recovery_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  EvalCounters::AddStorageRecoveryNs(recovery_.recovery_ns);
  return Status::Ok();
}

Status StorageEngine::ApplyRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateRelation:
      return db_->AddRelation(record.name,
                              GeneralizedRelation(record.arity));
    case WalRecordType::kDropRelation:
      if (!db_->RemoveRelation(record.name)) {
        return Status::Internal(StrCat("WAL replay: drop of missing relation '",
                                       record.name, "'"));
      }
      return Status::Ok();
    case WalRecordType::kSetRelation:
      db_->SetRelation(record.name, record.relation);
      return Status::Ok();
    case WalRecordType::kInsertTuples: {
      const GeneralizedRelation* existing = db_->FindRelation(record.name);
      if (existing == nullptr) {
        return Status::Internal(StrCat(
            "WAL replay: insert into missing relation '", record.name, "'"));
      }
      // Same merge the command layer performed when it logged the batch, so
      // replay reproduces the in-memory relation structurally.
      db_->SetRelation(record.name,
                       algebra::Union(*existing, record.relation));
      return Status::Ok();
    }
    case WalRecordType::kCreateView:
      if (!options_.view_hooks.restore) {
        return Status::Unsupported(
            StrCat("WAL replay: view '", record.name,
                   "' found but no view registry is attached"));
      }
      // Re-registered stale: the materialized tuples are derived state the
      // caller recomputes after recovery (RefreshStale). The exported
      // relation may already be present from the snapshot; it keeps serving
      // until then.
      return options_.view_hooks.restore(record.name, record.text);
    case WalRecordType::kDropView:
      if (!options_.view_hooks.restore_drop) {
        return Status::Unsupported(
            StrCat("WAL replay: view drop of '", record.name,
                   "' found but no view registry is attached"));
      }
      if (!options_.view_hooks.restore_drop(record.name)) {
        return Status::Internal(
            StrCat("WAL replay: drop of unregistered view '", record.name,
                   "'"));
      }
      db_->RemoveRelation(record.name);
      return Status::Ok();
    case WalRecordType::kTxnCommit:
      // The group is atomic by framing: either the whole record decoded (we
      // are here) or recovery truncated at its start. Apply the buffered
      // ops in execution order — each sub-record reuses the cases above.
      for (const WalRecord& op : record.group) {
        DODB_RETURN_IF_ERROR(ApplyRecord(op));
      }
      ++recovery_.txn_commits_replayed;
      recovery_.last_txn_generation =
          std::max(recovery_.last_txn_generation, record.txn_generation);
      return Status::Ok();
  }
  return Status::Internal("WAL replay: unreachable record type");
}

Status StorageEngine::Fail(Status status) {
  if (failed_.ok() && !status.ok()) failed_ = status;
  return status;
}

Status StorageEngine::RejectReadOnly() const {
  return Status::ReadOnly(
      StrCat("storage is read-only after: ", failed_.ToString(),
             " (reopen '", dir_, "' to resume logging)"));
}

Status StorageEngine::SyncWriter() {
  // The degrade site: a trip here emulates fsync returning EIO — no crash,
  // but the tail's durability is unknown, so the engine flips sticky-failed
  // and every later mutation is refused with kReadOnly.
  if (!guard_->Checkpoint(GuardSite::kWalSyncDegrade)) {
    return Fail(guard_->status());
  }
  Status status = Fail(writer_.Sync(guard_.get()));
  if (status.ok()) unsynced_records_ = 0;
  return status;
}

Status StorageEngine::LogRecord(const WalRecord& record) {
  if (options_.mode == DurabilityMode::kOff) return Status::Ok();
  if (closed_) {
    return Status::Internal("storage engine used after Close()");
  }
  if (!failed_.ok()) return RejectReadOnly();

  std::vector<uint8_t> payload = EncodeWalRecord(record);
  DODB_RETURN_IF_ERROR(Fail(writer_.Append(payload, guard_.get())));
  wal_bytes_ += 8 + payload.size();
  ++unsynced_records_;
  if (unsynced_records_ >= options_.wal_sync_every) {
    DODB_RETURN_IF_ERROR(SyncWriter());
  }

  if (writer_.size() > options_.wal_segment_bytes) {
    if (unsynced_records_ > 0) {
      DODB_RETURN_IF_ERROR(SyncWriter());
    }
    DODB_RETURN_IF_ERROR(Fail(writer_.Close()));
    ++segment_index_;
    DODB_RETURN_IF_ERROR(Fail(writer_.Create(
        WalPath(generation_, segment_index_), generation_, segment_index_)));
    wal_bytes_ += kWalHeaderBytes;
  }

  if (options_.mode == DurabilityMode::kWalCheckpoint &&
      options_.checkpoint_wal_bytes > 0 &&
      wal_bytes_ > options_.checkpoint_wal_bytes) {
    // The record above is already durable; a checkpoint failure here leaves
    // it recoverable from the WAL, but the engine goes sticky-failed.
    DODB_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::Ok();
}

Status StorageEngine::SyncWal() {
  if (options_.mode == DurabilityMode::kOff) return Status::Ok();
  if (closed_) {
    return Status::Internal("storage engine used after Close()");
  }
  if (!failed_.ok()) return RejectReadOnly();
  if (unsynced_records_ > 0) {
    DODB_RETURN_IF_ERROR(SyncWriter());
  }
  return Status::Ok();
}

Status StorageEngine::LogCreate(const std::string& name, int arity) {
  WalRecord record;
  record.type = WalRecordType::kCreateRelation;
  record.name = name;
  record.arity = arity;
  return LogRecord(record);
}

Status StorageEngine::LogDrop(const std::string& name) {
  WalRecord record;
  record.type = WalRecordType::kDropRelation;
  record.name = name;
  return LogRecord(record);
}

Status StorageEngine::LogSet(const std::string& name,
                             const GeneralizedRelation& relation) {
  WalRecord record;
  record.type = WalRecordType::kSetRelation;
  record.name = name;
  record.relation = relation;  // O(1): COW tuple storage
  return LogRecord(record);
}

Status StorageEngine::LogInsert(const std::string& name,
                                const GeneralizedRelation& batch) {
  WalRecord record;
  record.type = WalRecordType::kInsertTuples;
  record.name = name;
  record.relation = batch;
  return LogRecord(record);
}

Status StorageEngine::LogViewCreate(const std::string& name,
                                    const std::string& text) {
  WalRecord record;
  record.type = WalRecordType::kCreateView;
  record.name = name;
  record.text = text;
  return LogRecord(record);
}

Status StorageEngine::LogViewDrop(const std::string& name) {
  WalRecord record;
  record.type = WalRecordType::kDropView;
  record.name = name;
  return LogRecord(record);
}

Status StorageEngine::LogTxnCommit(uint64_t txn_generation,
                                   const std::vector<WalRecord>& ops) {
  if (options_.mode == DurabilityMode::kOff) return Status::Ok();
  if (closed_) {
    return Status::Internal("storage engine used after Close()");
  }
  if (!failed_.ok()) return RejectReadOnly();
  // Crash emulation right before the commit group becomes durable: the
  // transaction validated but its effects must vanish on recovery.
  if (!guard_->Checkpoint(GuardSite::kTxnWalCommit)) {
    return Fail(guard_->status());
  }
  WalRecord record;
  record.type = WalRecordType::kTxnCommit;
  record.txn_generation = txn_generation;
  record.group = ops;
  return LogRecord(record);
}

Status StorageEngine::Checkpoint() {
  if (options_.mode == DurabilityMode::kOff) return Status::Ok();
  if (closed_) {
    return Status::Internal("storage engine used after Close()");
  }
  if (!failed_.ok()) return RejectReadOnly();
  if (unsynced_records_ > 0) {
    DODB_RETURN_IF_ERROR(SyncWriter());
  }

  // Generation N+1 is born in this order — snapshot, fresh WAL, retire N —
  // so a crash between any two steps leaves at least one complete
  // generation on disk for recovery to pick up.
  const uint32_t old_generation = generation_;
  const uint32_t new_generation = generation_ + 1;
  DODB_RETURN_IF_ERROR(
      Fail(WriteSnapshotFile(*db_, SnapshotPath(new_generation),
                             guard_.get())));
  DODB_RETURN_IF_ERROR(Fail(writer_.Close()));
  generation_ = new_generation;
  segment_index_ = 0;
  DODB_RETURN_IF_ERROR(Fail(
      writer_.Create(WalPath(new_generation, 0), new_generation, 0)));
  wal_bytes_ = kWalHeaderBytes;
  // View definitions live only in the WAL (their create records are in the
  // generation being retired), so every registered view is re-logged into
  // the fresh log before the old one goes away. Appended directly — routing
  // through LogRecord could recurse into Checkpoint via the size trigger.
  if (options_.view_hooks.list) {
    for (const auto& [name, text] : options_.view_hooks.list()) {
      WalRecord record;
      record.type = WalRecordType::kCreateView;
      record.name = name;
      record.text = text;
      std::vector<uint8_t> payload = EncodeWalRecord(record);
      DODB_RETURN_IF_ERROR(Fail(writer_.Append(payload, guard_.get())));
      wal_bytes_ += 8 + payload.size();
    }
    DODB_RETURN_IF_ERROR(SyncWriter());
  }
  DODB_RETURN_IF_ERROR(Fail(DeleteGeneration(old_generation)));
  return Status::Ok();
}

Status StorageEngine::DeleteGeneration(uint32_t generation) {
  DODB_RETURN_IF_ERROR(RemoveFileIfExists(SnapshotPath(generation)));
  DODB_RETURN_IF_ERROR(
      RemoveFileIfExists(StrCat(SnapshotPath(generation), ".tmp")));
  for (uint32_t segment = 0; FileExists(WalPath(generation, segment));
       ++segment) {
    DODB_RETURN_IF_ERROR(RemoveFileIfExists(WalPath(generation, segment)));
  }
  return SyncDir(dir_);
}

Status StorageEngine::Close() {
  if (closed_) return failed_;
  if (options_.mode == DurabilityMode::kOff) {
    closed_ = true;
    return Status::Ok();
  }
  Status status = failed_;
  if (status.ok() && unsynced_records_ > 0) {
    status = SyncWriter();
  }
  if (status.ok() && options_.mode == DurabilityMode::kWalCheckpoint) {
    status = Checkpoint();
  }
  Status close_status = writer_.Close();
  if (status.ok()) status = close_status;
  closed_ = true;
  return status;
}

}  // namespace storage
}  // namespace dodb
