#include "storage/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "constraints/eval_counters.h"
#include "core/str_util.h"

namespace dodb {
namespace storage {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StrCat(op, " '", path, "' failed: ", std::strerror(errno)));
}

}  // namespace

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Open(const std::string& path, bool truncate) {
  DODB_CHECK_MSG(fd_ < 0, "AppendFile::Open on an open handle");
  int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status status = Errno("fstat", path);
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  size_ = static_cast<uint64_t>(st.st_size);
  return Status::Ok();
}

Status AppendFile::Append(const void* data, size_t size) {
  DODB_CHECK_MSG(fd_ >= 0, "AppendFile::Append on a closed handle");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  size_ += size;
  EvalCounters::AddStorageBytesWritten(size);
  return Status::Ok();
}

Status AppendFile::Sync() {
  DODB_CHECK_MSG(fd_ >= 0, "AppendFile::Sync on a closed handle");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  EvalCounters::AddStorageFsyncs(1);
  return Status::Ok();
}

Status AppendFile::Truncate(uint64_t size) {
  DODB_CHECK_MSG(fd_ >= 0, "AppendFile::Truncate on a closed handle");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = size;
  return Status::Ok();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::Ok();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::Ok();
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Open(const std::string& path, bool truncate) {
  DODB_CHECK_MSG(fd_ < 0, "RandomAccessFile::Open on an open handle");
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  return Status::Ok();
}

Status RandomAccessFile::ReadAt(uint64_t offset, void* buf,
                                size_t size) const {
  DODB_CHECK_MSG(fd_ >= 0, "RandomAccessFile::ReadAt on a closed handle");
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t left = size;
  off_t at = static_cast<off_t>(offset);
  while (left > 0) {
    ssize_t n = ::pread(fd_, p, left, at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) {
      return Status::Internal(
          StrCat("pread '", path_, "': short read at offset ", offset,
                 " (file truncated?)"));
    }
    p += n;
    left -= static_cast<size_t>(n);
    at += n;
  }
  return Status::Ok();
}

Status RandomAccessFile::WriteAt(uint64_t offset, const void* data,
                                 size_t size) {
  DODB_CHECK_MSG(fd_ >= 0, "RandomAccessFile::WriteAt on a closed handle");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  off_t at = static_cast<off_t>(offset);
  while (left > 0) {
    ssize_t n = ::pwrite(fd_, p, left, at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
    at += n;
  }
  EvalCounters::AddStorageBytesWritten(size);
  return Status::Ok();
}

Status RandomAccessFile::Sync() {
  DODB_CHECK_MSG(fd_ >= 0, "RandomAccessFile::Sync on a closed handle");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  EvalCounters::AddStorageFsyncs(1);
  return Status::Ok();
}

Status RandomAccessFile::Close() {
  if (fd_ < 0) return Status::Ok();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such file '", path, "'"));
    }
    return Errno("open", path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  Status status = Status::Ok();
  if (::fsync(fd) != 0) status = Errno("fsync dir", dir);
  if (status.ok()) EvalCounters::AddStorageFsyncs(1);
  ::close(fd);
  return status;
}

Status RenameFileDurable(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  size_t slash = to.rfind('/');
  std::string dir = slash == std::string::npos ? "." : to.substr(0, slash);
  return SyncDir(dir);
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Errno("mkdir", dir);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::Ok();
  return Errno("unlink", path);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace storage
}  // namespace dodb
