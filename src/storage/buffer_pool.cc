#include "storage/buffer_pool.h"

#include <cstring>
#include <utility>

#include "constraints/eval_counters.h"
#include "core/query_guard.h"
#include "core/str_util.h"

namespace dodb {
namespace storage {

struct BufferPool::Frame {
  uint64_t file_id = 0;
  uint64_t page_no = 0;
  std::unique_ptr<uint8_t[]> data;
  uint32_t pins = 0;
  bool dirty = false;
  bool referenced = false;  // CLOCK second-chance bit
  bool valid = false;
};

struct BufferPool::Impl {
  mutable std::mutex mu;
  uint64_t capacity = 0;
  uint64_t resident = 0;
  std::map<std::pair<uint64_t, uint64_t>, size_t> table;  // (file, page)->frame
  std::vector<Frame> frames;
  std::vector<size_t> free_frames;
  size_t clock_hand = 0;
  std::map<uint64_t, RandomAccessFile*> files;
  uint64_t next_file_id = 1;
  std::function<Status()> pre_writeback_hook;
};

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

BufferPool::BufferPool(uint64_t capacity_bytes) : impl_(new Impl()) {
  impl_->capacity = capacity_bytes;
}

BufferPool::~BufferPool() = default;

uint64_t BufferPool::RegisterFile(RandomAccessFile* file) {
  DODB_CHECK_MSG(file != nullptr, "RegisterFile(nullptr)");
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t id = impl_->next_file_id++;
  impl_->files.emplace(id, file);
  return id;
}

Status BufferPool::UnregisterFile(uint64_t file_id, bool flush) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto file_it = impl_->files.find(file_id);
  if (file_it == impl_->files.end()) {
    return Status::InvalidArgument(
        StrCat("buffer pool: unknown file id ", file_id));
  }
  // Collect first: writeback can fail mid-way and we must not half-erase.
  std::vector<size_t> owned;
  for (const auto& [key, frame] : impl_->table) {
    if (key.first != file_id) continue;
    if (impl_->frames[frame].pins > 0) {
      return Status::Internal(
          StrCat("buffer pool: unregistering '", file_it->second->path(),
                 "' with pinned pages"));
    }
    owned.push_back(frame);
  }
  for (size_t idx : owned) {
    Frame& f = impl_->frames[idx];
    if (f.dirty && flush) DODB_RETURN_IF_ERROR(WritebackLocked(f, lock));
    impl_->table.erase({f.file_id, f.page_no});
    f.valid = false;
    f.data.reset();
    impl_->resident -= kPageSize;
    impl_->free_frames.push_back(idx);
  }
  impl_->files.erase(file_id);
  return Status::Ok();
}

BufferPool::Page& BufferPool::Page::operator=(Page&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

BufferPool::Page::~Page() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

void BufferPool::Page::MarkDirty() {
  DODB_CHECK_MSG(pool_ != nullptr, "MarkDirty on an invalid page handle");
  pool_->MarkFrameDirty(frame_);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Frame& f = impl_->frames[frame];
  DODB_CHECK_MSG(f.pins > 0, "unpin of an unpinned frame");
  --f.pins;
}

void BufferPool::MarkFrameDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->frames[frame].dirty = true;
}

Status BufferPool::WritebackLocked(Frame& f,
                                   std::unique_lock<std::mutex>& lock) {
  (void)lock;  // held throughout; the hook takes only downstream locks
  // Checkpoint *before* any byte moves: a fault armed at page-writeback
  // leaves the spill file exactly as a crash at this instant would.
  if (QueryGuard* guard = CurrentQueryGuard()) {
    if (!guard->Checkpoint(GuardSite::kPageWriteback)) {
      return guard->status();
    }
  }
  if (impl_->pre_writeback_hook) {
    DODB_RETURN_IF_ERROR(impl_->pre_writeback_hook());
  }
  auto file_it = impl_->files.find(f.file_id);
  if (file_it == impl_->files.end()) {
    return Status::Internal("buffer pool: dirty frame of unregistered file");
  }
  DODB_RETURN_IF_ERROR(
      file_it->second->WriteAt(f.page_no * kPageSize, f.data.get(),
                               kPageSize));
  f.dirty = false;
  EvalCounters::AddPageWritebackBytes(kPageSize);
  return Status::Ok();
}

Status BufferPool::EvictForSpaceLocked(std::unique_lock<std::mutex>& lock) {
  uint64_t target = impl_->capacity;
  while (impl_->resident > target) {
    const size_t n = impl_->frames.size();
    if (n == 0) break;
    // CLOCK: skip pinned frames, clear one reference bit per pass; a full
    // double sweep with no victim means everything is pinned — allocate
    // past the cap rather than stall (pins are correctness, the cap is a
    // target).
    size_t victim = n;
    for (size_t scanned = 0; scanned < 2 * n; ++scanned) {
      size_t idx = impl_->clock_hand;
      impl_->clock_hand = (impl_->clock_hand + 1) % n;
      Frame& f = impl_->frames[idx];
      if (!f.valid || f.pins > 0) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      victim = idx;
      break;
    }
    if (victim == n) break;
    if (QueryGuard* guard = CurrentQueryGuard()) {
      if (!guard->Checkpoint(GuardSite::kPageEvict)) return guard->status();
    }
    Frame& f = impl_->frames[victim];
    if (f.dirty) DODB_RETURN_IF_ERROR(WritebackLocked(f, lock));
    impl_->table.erase({f.file_id, f.page_no});
    f.valid = false;
    f.data.reset();
    impl_->resident -= kPageSize;
    impl_->free_frames.push_back(victim);
    EvalCounters::AddPageEvictions(1);
  }
  return Status::Ok();
}

Result<BufferPool::Page> BufferPool::Fetch(uint64_t file_id,
                                           uint64_t page_no) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto file_it = impl_->files.find(file_id);
  if (file_it == impl_->files.end()) {
    return Status::InvalidArgument(
        StrCat("buffer pool: fetch from unknown file id ", file_id));
  }
  auto it = impl_->table.find({file_id, page_no});
  if (it != impl_->table.end()) {
    Frame& f = impl_->frames[it->second];
    ++f.pins;
    f.referenced = true;
    EvalCounters::AddPageCacheHits(1);
    return Page(this, it->second, f.data.get());
  }
  EvalCounters::AddPageCacheMisses(1);
  // Make room for the incoming page first (the new frame is pinned, so it
  // could not be chosen as its own victim, but evicting after insertion
  // would transiently overshoot the cap).
  impl_->resident += kPageSize;
  Status evict = EvictForSpaceLocked(lock);
  if (!evict.ok()) {
    impl_->resident -= kPageSize;
    return evict;
  }
  size_t idx;
  if (!impl_->free_frames.empty()) {
    idx = impl_->free_frames.back();
    impl_->free_frames.pop_back();
  } else {
    idx = impl_->frames.size();
    impl_->frames.emplace_back();
  }
  Frame& f = impl_->frames[idx];
  f.file_id = file_id;
  f.page_no = page_no;
  f.data.reset(new uint8_t[kPageSize]);
  Status read =
      file_it->second->ReadAt(page_no * kPageSize, f.data.get(), kPageSize);
  if (!read.ok()) {
    f.data.reset();
    impl_->resident -= kPageSize;
    impl_->free_frames.push_back(idx);
    return read;
  }
  f.pins = 1;
  f.dirty = false;
  f.referenced = true;
  f.valid = true;
  impl_->table.emplace(std::make_pair(file_id, page_no), idx);
  return Page(this, idx, f.data.get());
}

Result<BufferPool::Page> BufferPool::Create(uint64_t file_id,
                                            uint64_t page_no) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->files.find(file_id) == impl_->files.end()) {
    return Status::InvalidArgument(
        StrCat("buffer pool: create in unknown file id ", file_id));
  }
  auto it = impl_->table.find({file_id, page_no});
  if (it != impl_->table.end()) {
    // Re-creating a page that is still resident (e.g. a freed record-store
    // page being reused): zero the existing frame in place so stale bytes
    // never resurface.
    Frame& f = impl_->frames[it->second];
    std::memset(f.data.get(), 0, kPageSize);
    ++f.pins;
    f.referenced = true;
    EvalCounters::AddPageCacheHits(1);
    return Page(this, it->second, f.data.get());
  }
  EvalCounters::AddPageCacheMisses(1);
  impl_->resident += kPageSize;
  Status evict = EvictForSpaceLocked(lock);
  if (!evict.ok()) {
    impl_->resident -= kPageSize;
    return evict;
  }
  size_t idx;
  if (!impl_->free_frames.empty()) {
    idx = impl_->free_frames.back();
    impl_->free_frames.pop_back();
  } else {
    idx = impl_->frames.size();
    impl_->frames.emplace_back();
  }
  Frame& f = impl_->frames[idx];
  f.file_id = file_id;
  f.page_no = page_no;
  f.data.reset(new uint8_t[kPageSize]());
  f.pins = 1;
  f.dirty = false;  // the creator marks after filling the page
  f.referenced = true;
  f.valid = true;
  impl_->table.emplace(std::make_pair(file_id, page_no), idx);
  return Page(this, idx, f.data.get());
}

Status BufferPool::FlushFile(uint64_t file_id) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  for (auto& [key, frame] : impl_->table) {
    if (key.first != file_id) continue;
    Frame& f = impl_->frames[frame];
    if (f.dirty) DODB_RETURN_IF_ERROR(WritebackLocked(f, lock));
  }
  return Status::Ok();
}

void BufferPool::set_pre_writeback_hook(std::function<Status()> hook) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->pre_writeback_hook = std::move(hook);
}

void BufferPool::set_capacity_bytes(uint64_t bytes) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->capacity = bytes;
  // Best-effort shrink; a writeback failure (or an armed guard fault) just
  // leaves the extra pages resident until the next eviction attempt.
  (void)EvictForSpaceLocked(lock);
}

uint64_t BufferPool::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

uint64_t BufferPool::resident_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->resident;
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  size_t pinned = 0;
  for (const Frame& f : impl_->frames) {
    if (f.valid && f.pins > 0) ++pinned;
  }
  return pinned;
}

}  // namespace storage
}  // namespace dodb
