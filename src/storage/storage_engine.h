#ifndef DODB_STORAGE_STORAGE_ENGINE_H_
#define DODB_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/query_guard.h"
#include "core/status.h"
#include "io/database.h"
#include "storage/wal.h"

namespace dodb {
namespace storage {

/// How much durability the engine provides (the shell's \wal command and
/// Open() select one).
enum class DurabilityMode {
  kOff,            // no files touched; Log* calls are no-ops
  kWal,            // every op logged + fsynced before it is acknowledged
  kWalCheckpoint,  // kWal, plus automatic snapshot checkpoints and a
                   // checkpoint on Close()
};

const char* DurabilityModeName(DurabilityMode mode);

/// Callbacks connecting the engine to a materialized-view registry without a
/// storage→datalog dependency. Views are metadata + derived data: the WAL
/// carries only their definitions (kCreateView/kDropView records), never
/// their tuples — maintenance keeps the log O(delta) in the base change.
/// Checkpoint() re-logs every registered definition into the fresh WAL (the
/// old segments, holding the original create records, are retired), and
/// replay re-registers views *stale*; the caller recomputes them after Open
/// (ViewRegistry::RefreshStale).
struct ViewHooks {
  /// (name, definition text) of every registered view, in creation-safe
  /// (name) order. Called by Checkpoint.
  std::function<std::vector<std::pair<std::string, std::string>>()> list;
  /// Re-registers a view from its definition without evaluating it; the
  /// view starts stale. Called during WAL replay.
  std::function<Status(const std::string& name, const std::string& text)>
      restore;
  /// Unregisters a replayed view drop; returns whether it was registered.
  std::function<bool(const std::string& name)> restore_drop;
};

struct StorageOptions {
  DurabilityMode mode = DurabilityMode::kWalCheckpoint;
  /// Rotate to a new WAL segment once the current one exceeds this.
  uint64_t wal_segment_bytes = 4ull << 20;
  /// fsync batching: sync after every nth logged record. 1 = every record
  /// (full ack-implies-durable); larger values trade the tail of a crash for
  /// throughput, exactly like group commit.
  uint32_t wal_sync_every = 1;
  /// In kWalCheckpoint mode, checkpoint automatically once the live WAL
  /// exceeds this many bytes. 0 = only explicit Checkpoint()/Close().
  uint64_t checkpoint_wal_bytes = 64ull << 20;
  /// Budgets for the engine's guard (recovery replay, snapshot writes).
  /// deadline_ms is measured from Open(), so treat it as a bound on the
  /// engine's whole life, not per-op.
  GuardLimits limits;
  /// Storage fault spec "<site>[:<nth>]" (core/fault_injection.h). Empty =
  /// the DODB_FAULT environment variable when set, else off. The crash
  /// tests arm wal-append / wal-sync / snapshot-write / snapshot-rename /
  /// wal-replay here.
  std::string fault_spec;
  /// Optional view-registry callbacks; without them, replaying a WAL that
  /// holds view records is an error (the database needs its view-aware
  /// opener).
  ViewHooks view_hooks;
};

/// What recovery found when the engine opened.
struct RecoveryInfo {
  bool snapshot_loaded = false;   // a snapshot file seeded the catalog
  uint32_t generation = 0;        // generation recovered into
  size_t segments_scanned = 0;    // WAL segments read
  size_t records_replayed = 0;    // logical ops applied on top of the snapshot
  bool wal_truncated = false;     // a torn/corrupt WAL tail was chopped
  uint64_t recovery_ns = 0;       // wall time of the whole Open() recovery
  /// Transaction commit groups replayed (each counts once in
  /// records_replayed; its sub-operations are not counted separately).
  uint64_t txn_commits_replayed = 0;
  /// Highest transaction commit generation seen in the replayed log; the
  /// TransactionManager resumes numbering above it.
  uint64_t last_txn_generation = 0;
  /// The chopped WAL tail was an unfinished transaction commit: its write
  /// set vanished (correct — the commit never completed), and `warning`
  /// carries the typed message instead of a silent truncation.
  bool torn_txn_tail = false;
  std::string warning;
};

/// Durable storage for one Database: a data directory holding the latest
/// binary snapshot plus the WAL segments written since (DESIGN.md §11).
///
///   dodb_data/
///     snapshot-000007.snap     latest checkpoint (generation 7)
///     wal-000007-000000.wal    segments extending it, in index order
///     wal-000007-000001.wal
///
/// Discipline: callers invoke Log* BEFORE applying the same operation to the
/// in-memory Database; a Log* that returns OK means the op is durable (at
/// wal_sync_every = 1) and recovery will replay it. A Log* error means the
/// op must not be applied or acknowledged — and the engine goes sticky-
/// failed: the failing call returns its own error, and every LATER
/// Log*/Checkpoint/SyncWal is refused with a distinct StatusCode::kReadOnly
/// naming the original failure, because after a failed append the disk
/// state no longer tracks memory and only a fresh Open() (which
/// re-truncates the torn tail) can re-establish the invariant. The typed
/// kReadOnly lets callers (the server, the shell) degrade gracefully —
/// keep answering queries, refuse DML precisely — instead of treating the
/// engine as generically broken. Close() the failed engine and reopen to
/// resume.
///
/// Checkpoint() writes generation N+1: snapshot of the current catalog
/// (atomic temp + rename), a fresh empty WAL, then deletes generation N's
/// files. A crash anywhere in between leaves either generation intact on
/// disk — recovery picks the newest complete snapshot.
///
/// Not thread-safe: the engine serializes with the catalog it mirrors,
/// which is single-writer by construction (the shell/command layer).
class StorageEngine {
 public:
  /// Opens (creating if needed) the data directory, recovers `db` from the
  /// newest snapshot + WAL tail, and leaves the engine ready to log. `db`
  /// must outlive the engine and start empty — recovery replaces its
  /// contents. A corrupt snapshot is a loud error (never silently ignored);
  /// a torn WAL tail is truncated and reported via recovery().
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, Database* db, StorageOptions options = {});

  ~StorageEngine();
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Logs "create <name>/<arity>" durably. Call before Database::AddRelation.
  Status LogCreate(const std::string& name, int arity);
  /// Logs "drop <name>". Call before Database::RemoveRelation.
  Status LogDrop(const std::string& name);
  /// Logs "set <name> = relation" (insert/delete results, materialized
  /// query results). Call before Database::SetRelation.
  Status LogSet(const std::string& name, const GeneralizedRelation& relation);
  /// Logs "union <batch> into <name>"; replay unions the batch into the
  /// relation's recovered state. Call before applying the same union.
  Status LogInsert(const std::string& name, const GeneralizedRelation& batch);

  /// Logs "create view <name> as <text>". The definition only — the
  /// materialized tuples are derived state, recomputed on recovery. Because
  /// registering a view can itself fail (evaluation), the command layer
  /// creates the view first and logs on success, rolling the registration
  /// back if the log fails — disk never runs ahead of memory.
  Status LogViewCreate(const std::string& name, const std::string& text);
  /// Logs "drop view <name>". Call before ViewRegistry::Drop.
  Status LogViewDrop(const std::string& name);

  /// Logs a whole transaction's write set as ONE atomic kTxnCommit record
  /// group tagged with its commit generation. The group either replays in
  /// full or (torn tail) not at all, so aborted and in-flight transactions
  /// never reach the log and a crashed commit vanishes cleanly. Checkpoints
  /// GuardSite::kTxnWalCommit before the append — a trip there emulates a
  /// crash with the commit validated but not yet durable. Call before
  /// applying the ops to the catalog.
  Status LogTxnCommit(uint64_t txn_generation,
                      const std::vector<WalRecord>& ops);

  /// Writes a new snapshot generation and retires the old WAL.
  Status Checkpoint();

  /// Syncs any batched WAL tail without closing or checkpointing. The
  /// buffer pool's pre-writeback hook: dirty page writeback must never
  /// overtake the log records that justify the state on those pages.
  /// A no-op in kOff mode and when nothing is unsynced.
  Status SyncWal();

  /// Syncs any batched WAL tail; in kWalCheckpoint mode also checkpoints.
  /// The destructor calls Close() best-effort; call it explicitly to see
  /// the status.
  Status Close();

  const RecoveryInfo& recovery() const { return recovery_; }
  DurabilityMode mode() const { return options_.mode; }
  const std::string& dir() const { return dir_; }
  uint32_t generation() const { return generation_; }
  /// Bytes in the live WAL generation (all segments, headers included).
  uint64_t wal_bytes() const { return wal_bytes_; }
  /// The sticky failure, Ok while healthy.
  Status failure() const { return failed_; }
  /// Whether the engine has degraded to read-only (sticky-failed): queries
  /// against the in-memory catalog still work, every mutation is refused
  /// with kReadOnly until the directory is reopened.
  bool read_only() const { return !failed_.ok(); }

  /// The engine's guard (fault injection, budgets). Never null.
  QueryGuard* guard() { return guard_.get(); }

 private:
  StorageEngine(std::string dir, Database* db, StorageOptions options);

  Status Recover();
  Status ApplyRecord(const WalRecord& record);
  /// Append + policy-driven sync + segment rotation for one encoded record.
  Status LogRecord(const WalRecord& record);
  /// Makes `status` sticky (first failure wins) and returns it.
  Status Fail(Status status);
  /// The typed refusal every post-failure mutation gets: kReadOnly, naming
  /// the sticky failure it degraded on.
  Status RejectReadOnly() const;
  /// Degrade checkpoint + fsync of the batched WAL tail. Every sync the
  /// engine performs goes through here so the wal-sync-degrade fault site
  /// can emulate an fsync EIO at any of them.
  Status SyncWriter();
  std::string SnapshotPath(uint32_t generation) const;
  std::string WalPath(uint32_t generation, uint32_t segment) const;
  Status DeleteGeneration(uint32_t generation);

  const std::string dir_;
  Database* const db_;
  const StorageOptions options_;
  std::unique_ptr<QueryGuard> guard_;

  uint32_t generation_ = 0;
  uint32_t segment_index_ = 0;
  uint64_t wal_bytes_ = 0;
  uint32_t unsynced_records_ = 0;
  WalWriter writer_;
  RecoveryInfo recovery_;
  Status failed_;
  bool closed_ = false;
};

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_STORAGE_ENGINE_H_
