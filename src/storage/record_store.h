#ifndef DODB_STORAGE_RECORD_STORE_H_
#define DODB_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/buffer_pool.h"
#include "storage/file_io.h"

namespace dodb {
namespace storage {

/// Pluggable store of opaque byte records (encoded tuple runs). The paged
/// relation layer encodes runs with the snapshot codec and parks them here;
/// which backend serves them is the per-relation storage choice surfaced by
/// the shell.
///
/// Implementations must be thread-safe: shard-pair jobs Get concurrently.
class RecordStore {
 public:
  virtual ~RecordStore() = default;

  /// Stores a copy of `size` bytes; the returned id retrieves them.
  virtual Result<uint64_t> Put(const void* data, size_t size) = 0;
  /// Retrieves a record verbatim (out is replaced). Non-OK on unknown id,
  /// I/O failure or checksum mismatch.
  virtual Status Get(uint64_t id, std::vector<uint8_t>* out) const = 0;
  /// Releases a record; its id must not be used again.
  virtual Status Free(uint64_t id) = 0;
  /// Forces buffered state down to the backing file (no-op in memory).
  virtual Status Flush() = 0;

  /// Bytes of payload currently stored (the out-of-core working set).
  virtual uint64_t payload_bytes() const = 0;
};

/// Default resident backend: records live in a map. This is what "paged
/// storage off" degenerates to when a caller still wants the RecordStore
/// interface.
class MemoryRecordStore : public RecordStore {
 public:
  Result<uint64_t> Put(const void* data, size_t size) override;
  Status Get(uint64_t id, std::vector<uint8_t>* out) const override;
  Status Free(uint64_t id) override;
  Status Flush() override { return Status::Ok(); }
  uint64_t payload_bytes() const override;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<uint8_t>> records_;
  uint64_t next_id_ = 1;
  uint64_t payload_bytes_ = 0;
};

/// Out-of-core backend: records are chunked across fixed-size pages of one
/// spill file, served through a BufferPool. Page layout:
///
///   [u32 crc | u32 payload_len | u32 next_page] payload... (zero padding)
///
/// crc is CRC32 (the snapshot/WAL polynomial) over bytes [4, kPageSize) —
/// everything but the checksum itself, padding included — and is verified
/// on every page read, so a torn or corrupted spill page surfaces as a
/// clean error, never as silently wrong tuples. next_page == kNoPage ends
/// a record's chain; a record's id is its first page number. Freed chains
/// return their pages to a free list; the pool zeroes reused frames, so a
/// recycled page can never leak a stale record.
///
/// The spill file is an ephemeral cache (snapshot + WAL stay the source of
/// truth): Open always starts empty, and losing the file loses nothing.
class PagedRecordStore : public RecordStore {
 public:
  /// Creates/truncates the spill file at `path` and registers it with
  /// `pool` (which must outlive the store).
  static Result<std::unique_ptr<PagedRecordStore>> Open(
      const std::string& path, BufferPool* pool);

  ~PagedRecordStore() override;

  Result<uint64_t> Put(const void* data, size_t size) override;
  Status Get(uint64_t id, std::vector<uint8_t>* out) const override;
  Status Free(uint64_t id) override;
  /// Writes every dirty page of this store's file back (pre-writeback hook
  /// first, preserving WAL-before-writeback).
  Status Flush() override;
  uint64_t payload_bytes() const override;

  const std::string& path() const { return file_.path(); }
  /// Pages ever allocated (file size high-water mark in pages).
  uint64_t allocated_pages() const;

  static constexpr uint32_t kNoPage = 0xFFFFFFFFu;
  static constexpr size_t kPageHeaderSize = 12;
  static constexpr size_t kPagePayload = kPageSize - kPageHeaderSize;

 private:
  PagedRecordStore() = default;

  uint64_t AllocPageLocked();
  Status ReadPage(uint64_t page_no, std::vector<uint8_t>* payload,
                  uint32_t* next_page) const;

  BufferPool* pool_ = nullptr;
  uint64_t file_id_ = 0;
  RandomAccessFile file_;

  mutable std::mutex mu_;
  std::vector<uint64_t> free_pages_;
  uint64_t next_page_num_ = 0;
  uint64_t payload_bytes_ = 0;
};

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_RECORD_STORE_H_
