#include "storage/binary_format.h"

#include <array>
#include <cstring>

#include "core/str_util.h"

namespace dodb {
namespace storage {

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table, and
// table[k][b] is the CRC of byte b followed by k zero bytes, which lets the
// hot loop fold 8 input bytes per iteration (snapshot loads checksum every
// payload before decoding it, so this is on the recovery critical path).
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

// Decoded collection sizes are sanity-capped against the bytes actually
// present (every element costs at least one byte), so a corrupt length can
// never drive an allocation past the input size.
Status CheckCount(uint64_t count, size_t remaining, const char* what) {
  if (count > remaining) {
    return Status::InvalidArgument(
        StrCat("binary ", what, " count ", count, " exceeds the ", remaining,
               " bytes remaining"));
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildCrcTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    c = kTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --size;
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFFu);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBigInt(const BigInt& v) {
  PutU8(v.is_zero() ? 0 : (v.is_negative() ? 2 : 1));
  PutVarint(v.limbs().size());
  for (uint32_t limb : v.limbs()) PutU32(limb);
}

void ByteWriter::PutRational(const Rational& v) {
  PutBigInt(v.num());
  PutBigInt(v.den());
}

void ByteWriter::PutTerm(const Term& t) {
  if (t.is_var()) {
    PutU8(0);
    PutVarint(static_cast<uint64_t>(t.var()));
  } else {
    PutU8(1);
    PutRational(t.constant());
  }
}

void ByteWriter::PutAtom(const DenseAtom& a) {
  PutTerm(a.lhs());
  PutU8(static_cast<uint8_t>(a.op()));
  PutTerm(a.rhs());
}

void ByteWriter::PutTuple(const GeneralizedTuple& t) {
  PutVarint(t.atoms().size());
  for (const DenseAtom& atom : t.atoms()) PutAtom(atom);
}

void ByteWriter::PutRelationPayload(const GeneralizedRelation& rel) {
  PutVarint(static_cast<uint64_t>(rel.arity()));
  PutVarint(rel.tuple_count());
  for (const GeneralizedTuple& tuple : rel.tuples()) PutTuple(tuple);
}

Status ByteReader::Truncated(const char* what) {
  return Status::InvalidArgument(
      StrCat("binary input truncated reading ", what, " at offset ", pos_));
}

Status ByteReader::GetU8(uint8_t* v) {
  if (pos_ >= size_) return Truncated("u8");
  *v = data_[pos_++];
  return Status::Ok();
}

Status ByteReader::GetU32(uint32_t* v) {
  if (size_ - pos_ < 4) return Truncated("u32");
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return Status::Ok();
}

Status ByteReader::GetVarint(uint64_t* v) {
  // Single-byte values dominate (atom counts, small variable indices, limb
  // counts), so peel that case off the general loop.
  if (pos_ < size_ && (data_[pos_] & 0x80u) == 0) {
    *v = data_[pos_++];
    return Status::Ok();
  }
  *v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) return Truncated("varint");
    uint8_t byte = data_[pos_++];
    *v |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift == 63 && (byte & 0x7Eu) != 0) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

Status ByteReader::GetString(std::string* s) {
  uint64_t len = 0;
  DODB_RETURN_IF_ERROR(GetVarint(&len));
  DODB_RETURN_IF_ERROR(CheckCount(len, remaining(), "string"));
  s->assign(reinterpret_cast<const char*>(data_ + pos_),
            static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::Ok();
}

Status ByteReader::GetBigInt(BigInt* v) {
  uint8_t sign = 0;
  DODB_RETURN_IF_ERROR(GetU8(&sign));
  if (sign > 2) {
    return Status::InvalidArgument(
        StrCat("bad BigInt sign byte ", static_cast<int>(sign)));
  }
  uint64_t limb_count = 0;
  DODB_RETURN_IF_ERROR(GetVarint(&limb_count));
  DODB_RETURN_IF_ERROR(CheckCount(limb_count, remaining() / 4, "limb"));
  // CheckCount above guarantees 4 * limb_count bytes are present, so the
  // limbs can be decoded with one bounds check instead of one per limb.
  std::vector<uint32_t> limbs(static_cast<size_t>(limb_count));
  const uint8_t* p = data_ + pos_;
  for (uint64_t i = 0; i < limb_count; ++i, p += 4) {
    limbs[i] = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
               static_cast<uint32_t>(p[2]) << 16 |
               static_cast<uint32_t>(p[3]) << 24;
  }
  pos_ += static_cast<size_t>(limb_count) * 4;
  *v = BigInt::FromLimbs(sign == 2 ? -1 : 1, std::move(limbs));
  if (sign == 0 && !v->is_zero()) {
    return Status::InvalidArgument("BigInt sign byte 0 with nonzero limbs");
  }
  return Status::Ok();
}

Status ByteReader::GetRational(Rational* v) {
  BigInt num, den;
  DODB_RETURN_IF_ERROR(GetBigInt(&num));
  DODB_RETURN_IF_ERROR(GetBigInt(&den));
  if (den.is_zero()) {
    return Status::InvalidArgument("Rational with zero denominator");
  }
  // Integers (den = 1) dominate real catalogs; the integer constructor
  // skips the gcd normalization the general one always performs.
  if (!den.is_negative() && den.limbs().size() == 1 && den.limbs()[0] == 1) {
    *v = Rational(std::move(num));
  } else {
    *v = Rational(std::move(num), std::move(den));
  }
  return Status::Ok();
}

Status ByteReader::GetTerm(Term* t) {
  uint8_t tag = 0;
  DODB_RETURN_IF_ERROR(GetU8(&tag));
  if (tag == 0) {
    uint64_t index = 0;
    DODB_RETURN_IF_ERROR(GetVarint(&index));
    if (index > static_cast<uint64_t>(INT32_MAX)) {
      return Status::InvalidArgument(StrCat("variable index ", index,
                                            " out of range"));
    }
    *t = Term::Var(static_cast<int>(index));
    return Status::Ok();
  }
  if (tag == 1) {
    Rational value;
    DODB_RETURN_IF_ERROR(GetRational(&value));
    *t = Term::Const(std::move(value));
    return Status::Ok();
  }
  return Status::InvalidArgument(
      StrCat("bad Term tag ", static_cast<int>(tag)));
}

Status ByteReader::GetAtom(DenseAtom* a) {
  Term lhs = Term::Var(0), rhs = Term::Var(0);
  uint8_t op = 0;
  DODB_RETURN_IF_ERROR(GetTerm(&lhs));
  DODB_RETURN_IF_ERROR(GetU8(&op));
  if (op > static_cast<uint8_t>(RelOp::kGt)) {
    return Status::InvalidArgument(
        StrCat("bad RelOp byte ", static_cast<int>(op)));
  }
  DODB_RETURN_IF_ERROR(GetTerm(&rhs));
  *a = DenseAtom(std::move(lhs), static_cast<RelOp>(op), std::move(rhs));
  return Status::Ok();
}

Status ByteReader::GetTuple(int arity, GeneralizedTuple* t) {
  uint64_t atom_count = 0;
  DODB_RETURN_IF_ERROR(GetVarint(&atom_count));
  DODB_RETURN_IF_ERROR(CheckCount(atom_count, remaining(), "atom"));
  std::vector<DenseAtom> atoms;
  atoms.reserve(static_cast<size_t>(atom_count));
  for (uint64_t i = 0; i < atom_count; ++i) {
    DenseAtom atom(Term::Var(0), RelOp::kEq, Term::Var(0));
    DODB_RETURN_IF_ERROR(GetAtom(&atom));
    for (const Term* term : {&atom.lhs(), &atom.rhs()}) {
      if (term->is_var() && term->var() >= arity) {
        return Status::InvalidArgument(
            StrCat("variable x", term->var(), " outside arity ", arity));
      }
    }
    atoms.push_back(std::move(atom));
  }
  *t = GeneralizedTuple(arity, std::move(atoms));
  return Status::Ok();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Truncated("skipped region");
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetRelationPayload(GeneralizedRelation* rel) {
  uint64_t arity = 0, tuple_count = 0;
  DODB_RETURN_IF_ERROR(GetVarint(&arity));
  if (arity > 1024) {
    return Status::InvalidArgument(StrCat("implausible arity ", arity));
  }
  DODB_RETURN_IF_ERROR(GetVarint(&tuple_count));
  DODB_RETURN_IF_ERROR(CheckCount(tuple_count, remaining(), "tuple"));
  std::vector<GeneralizedTuple> tuples;
  tuples.reserve(static_cast<size_t>(tuple_count));
  for (uint64_t i = 0; i < tuple_count; ++i) {
    GeneralizedTuple tuple(static_cast<int>(arity));
    DODB_RETURN_IF_ERROR(GetTuple(static_cast<int>(arity), &tuple));
    tuples.push_back(std::move(tuple));
  }
  *rel = GeneralizedRelation::FromCanonicalTuples(static_cast<int>(arity),
                                                  std::move(tuples));
  return Status::Ok();
}

}  // namespace storage
}  // namespace dodb
