#include "storage/paged_relation.h"

#include <algorithm>
#include <utility>

#include "constraints/eval_counters.h"
#include "core/str_util.h"
#include "storage/binary_format.h"

namespace dodb {
namespace storage {

SpilledTupleSource::SpilledTupleSource(std::shared_ptr<RecordStore> store,
                                       int arity, size_t tuple_count,
                                       std::vector<RunEntry> runs,
                                       uint64_t payload_bytes)
    : store_(std::move(store)),
      arity_(arity),
      tuple_count_(tuple_count),
      runs_(std::move(runs)),
      payload_bytes_(payload_bytes) {}

SpilledTupleSource::~SpilledTupleSource() {
  // The records exist only to back this source; a Free failure (e.g. a
  // fault-tripped fetch mid-walk) just strands reusable pages in an
  // ephemeral file.
  for (const RunEntry& run : runs_) (void)store_->Free(run.record_id);
}

Status SpilledTupleSource::FetchRun(size_t run,
                                    std::vector<GeneralizedTuple>* out) const {
  DODB_CHECK_MSG(run < runs_.size(), "FetchRun index out of range");
  const RunEntry& entry = runs_[run];
  std::vector<uint8_t> bytes;
  DODB_RETURN_IF_ERROR(store_->Get(entry.record_id, &bytes));
  ByteReader reader(bytes.data(), bytes.size());
  uint64_t count = 0;
  DODB_RETURN_IF_ERROR(reader.GetVarint(&count));
  size_t expected = RunEnd(run) - entry.begin;
  if (count != expected) {
    return Status::Internal(
        StrCat("spilled run ", run, ": decoded tuple count ", count,
               " does not match the directory (", expected, ")"));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    GeneralizedTuple tuple(arity_);
    DODB_RETURN_IF_ERROR(reader.GetTuple(arity_, &tuple));
    out->push_back(std::move(tuple));
  }
  if (!reader.AtEnd()) {
    return Status::Internal(
        StrCat("spilled run ", run, ": trailing bytes after the last tuple"));
  }
  if (!out->empty() &&
      out->front().CachedSignature().hash != entry.signature_key) {
    return Status::Internal(
        StrCat("spilled run ", run, ": signature key mismatch (the record ",
               "store returned the wrong run)"));
  }
  EvalCounters::AddPagedRunsFetched(1);
  return Status::Ok();
}

Result<std::unique_ptr<RelationPager>> RelationPager::OpenPaged(
    const std::string& path, BufferPool* pool) {
  auto store = PagedRecordStore::Open(path, pool);
  if (!store.ok()) return store.status();
  std::shared_ptr<RecordStore> shared = std::move(store).value();
  return std::unique_ptr<RelationPager>(new RelationPager(std::move(shared)));
}

std::unique_ptr<RelationPager> RelationPager::InMemory() {
  return std::unique_ptr<RelationPager>(
      new RelationPager(std::make_shared<MemoryRecordStore>()));
}

Result<GeneralizedRelation> RelationPager::Spill(
    const GeneralizedRelation& rel) {
  if (rel.is_paged() || rel.IsEmpty()) return rel;
  const std::vector<GeneralizedTuple>& tuples = rel.tuples();
  // Build the index before spilling so the paged twin shares the resident
  // build (signatures double as the run directory keys).
  std::shared_ptr<RelationIndex> index = rel.SharedIndex();
  std::vector<SpilledTupleSource::RunEntry> runs;
  runs.reserve((tuples.size() + SpilledTupleSource::kRunTuples - 1) /
               SpilledTupleSource::kRunTuples);
  uint64_t payload_bytes = 0;
  Status failed = Status::Ok();
  for (size_t begin = 0; begin < tuples.size() && failed.ok();
       begin += SpilledTupleSource::kRunTuples) {
    size_t end =
        std::min(begin + SpilledTupleSource::kRunTuples, tuples.size());
    ByteWriter writer;
    writer.PutVarint(end - begin);
    for (size_t i = begin; i < end; ++i) writer.PutTuple(tuples[i]);
    auto id = store_->Put(writer.data().data(), writer.size());
    if (!id.ok()) {
      failed = id.status();
      break;
    }
    SpilledTupleSource::RunEntry entry;
    entry.record_id = id.value();
    entry.begin = begin;
    entry.signature_key = index->signature(begin).hash;
    payload_bytes += writer.size();
    runs.push_back(entry);
  }
  if (!failed.ok()) {
    for (const SpilledTupleSource::RunEntry& run : runs) {
      (void)store_->Free(run.record_id);
    }
    return failed;
  }
  auto source = std::make_shared<SpilledTupleSource>(
      store_, rel.arity(), tuples.size(), std::move(runs), payload_bytes);
  return GeneralizedRelation::FromPagedSource(std::move(source),
                                              std::move(index));
}

}  // namespace storage
}  // namespace dodb
