#ifndef DODB_STORAGE_WAL_H_
#define DODB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "core/query_guard.h"
#include "core/status.h"
#include "storage/file_io.h"

namespace dodb {
namespace storage {

/// Append-only write-ahead log of logical catalog operations.
///
/// Segment layout (DESIGN.md §11):
///   magic[8]  "DODBWAL1"
///   u32       format version (kWalVersion)
///   u32       generation (which snapshot this log extends)
///   u32       segment index within the generation
///   u32       CRC32 of the 20 header bytes above
///   records, back to back:
///     u32     payload length
///     u32     CRC32 of the payload
///     payload (u8 record type + body, see WalRecord)
///
/// The discipline is log-then-apply: the engine appends and syncs a record
/// BEFORE mutating the in-memory catalog, and acknowledges the operation
/// only after fsync returns. A reader (ReadWalSegment) accepts the longest
/// prefix of intact records and reports where it stopped — a torn length
/// prefix, a short payload, a checksum mismatch, or an undecodable payload
/// all end the log at that record's start, which is exactly the state an
/// append interrupted by a crash leaves behind.

inline constexpr char kWalMagic[8] = {'D', 'O', 'D', 'B', 'W', 'A', 'L', '1'};
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 24;

/// Logical operation types. Values are the on-disk u8 tags — append-only,
/// never renumber.
enum class WalRecordType : uint8_t {
  kCreateRelation = 1,  // name + arity: an empty relation enters the catalog
  kDropRelation = 2,    // name
  kSetRelation = 3,     // name + full relation payload (replaces)
  kInsertTuples = 4,    // name + batch relation payload (unions into existing)
  kCreateView = 5,      // name + definition text: a materialized view enters
                        // the catalog (replay re-registers it stale; its
                        // tuples are recomputed, never logged)
  kDropView = 6,        // name
  kTxnCommit = 7,       // commit generation + nested sub-records: one atomic
                        // record group holding a whole transaction's write
                        // set. The per-record framing CRC makes the group
                        // all-or-nothing — a torn commit is truncated and
                        // none of its operations replay.
};

/// One decoded logical operation.
struct WalRecord {
  WalRecordType type = WalRecordType::kCreateRelation;
  std::string name;
  int arity = 0;  // kCreateRelation only
  GeneralizedRelation relation{0};  // kSetRelation / kInsertTuples only
  std::string text;  // kCreateView only: the Datalog definition, verbatim
  // kTxnCommit only: the commit generation and the transaction's buffered
  // operations in execution order. Nesting another kTxnCommit is illegal.
  uint64_t txn_generation = 0;
  std::vector<WalRecord> group;
};

/// Record payload codecs (the framing CRC is WalWriter/ReadWalSegment's job).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(const uint8_t* data, size_t size);

/// Appender for one WAL segment file.
class WalWriter {
 public:
  /// Creates a fresh segment: writes and fsyncs the header, so rotation is
  /// durable before the first record lands.
  Status Create(const std::string& path, uint32_t generation,
                uint32_t segment_index);

  /// Reopens a recovered segment for appending, truncating it to
  /// `valid_bytes` first (chopping the torn tail ReadWalSegment reported).
  Status OpenForAppend(const std::string& path, uint64_t valid_bytes);

  /// Appends one framed record. The write is split around a checkpoint at
  /// GuardSite::kWalAppend, so a tripped fault leaves a genuinely torn
  /// record on disk (framing present, payload short) and returns the
  /// guard's status — the caller must not apply or acknowledge the op.
  /// Durability requires a subsequent Sync.
  Status Append(const std::vector<uint8_t>& payload, QueryGuard* guard);

  /// fsyncs the segment, then checkpoints GuardSite::kWalSync: a trip there
  /// emulates a crash after the record became durable but before the engine
  /// acknowledged it — recovery will replay the op even though the caller
  /// saw an error.
  Status Sync(QueryGuard* guard);

  Status Close() { return file_.Close(); }
  bool is_open() const { return file_.is_open(); }
  uint64_t size() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

 private:
  AppendFile file_;
};

/// What ReadWalSegment found in a segment file.
struct WalSegmentContents {
  std::vector<WalRecord> records;
  /// Offset one past the last intact record (the truncation point a writer
  /// must resume from). kWalHeaderBytes when the log is empty; 0 when even
  /// the header was torn.
  uint64_t valid_bytes = 0;
  /// Whether a torn/corrupt suffix was dropped to get there.
  bool truncated = false;
  /// Whether the dropped suffix starts with a kTxnCommit frame — the tail
  /// belonged to a transaction whose commit never finished. Recovery
  /// surfaces this as a typed warning (the transaction's effects vanish by
  /// design, but silently chopping a commit is worth telling the operator
  /// about) and counts it in RecoveryInfo.
  bool torn_txn_tail = false;
};

/// Reads the longest intact prefix of a segment. A torn or corrupt header
/// yields an empty, truncated-at-zero result (a crash during segment
/// creation); a header whose CRC is valid but whose generation or index
/// disagrees with the expected values is an error (misplaced file, not a
/// crash state). Ticks `guard` at GuardSite::kWalReplay per record.
Result<WalSegmentContents> ReadWalSegment(const std::string& path,
                                          uint32_t expected_generation,
                                          uint32_t expected_segment_index,
                                          QueryGuard* guard = nullptr);

}  // namespace storage
}  // namespace dodb

#endif  // DODB_STORAGE_WAL_H_
