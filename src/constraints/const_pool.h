#ifndef DODB_CONSTRAINTS_CONST_POOL_H_
#define DODB_CONSTRAINTS_CONST_POOL_H_

#include <cstdint>

#include "core/rational.h"

namespace dodb {

/// Process-wide interner for the rational constants mentioned by dense-order
/// terms. Rationals are normalized (reduced, positive denominator), so value
/// equality coincides with structural equality and interning is canonical:
/// equal values always map to the same slot, which turns constant-term
/// equality into a slot compare and constant-term copies into POD copies —
/// the old Term carried a Rational (two heap-backed BigInts) by value, so
/// every atom copy in the closure sweep and the merge paths paid allocator
/// round-trips.
///
/// Slots are append-only and never invalidated: Value() returns a reference
/// that stays stable for the process lifetime. Storage is chunked with
/// atomically published chunk pointers, so Value()/HashOf() are lock-free;
/// Intern() takes a shared lock on the lookup table (exclusive only for a
/// first-seen value). The working set is the distinct constants of the
/// loaded databases and queries — bounded and small in practice, so no
/// eviction is needed (or possible, since Terms hold bare slots).
class ConstPool {
 public:
  /// The slot of `value`, interning it on first sight.
  static uint32_t Intern(const Rational& value);

  /// The value stored at `slot` (stable address, lock-free).
  static const Rational& Value(uint32_t slot);

  /// value.Hash(), precomputed at intern time (lock-free).
  static size_t HashOf(uint32_t slot);

  /// Distinct constants interned so far (diagnostic).
  static size_t size();
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_CONST_POOL_H_
