#ifndef DODB_CONSTRAINTS_DENSE_QE_H_
#define DODB_CONSTRAINTS_DENSE_QE_H_

#include <vector>

#include "constraints/generalized_relation.h"
#include "constraints/generalized_tuple.h"

namespace dodb {

/// Exact quantifier elimination for dense order without endpoints [CK73].
///
/// EliminateVariable computes a quantifier-free DNF equivalent to
/// `exists x_var. tuple` over Q = (Q, <=). The result keeps the tuple's
/// arity; the eliminated variable simply no longer occurs. The output is a
/// relation (not a single tuple) because inequations interact with closed
/// bounds: `exists x (l <= x and x <= u and x != f)` is `l < u or (l <= u
/// and l != f)`, a genuine disjunction.
GeneralizedRelation EliminateVariable(const GeneralizedTuple& tuple, int var);

/// Tuple-wise elimination over a whole relation.
GeneralizedRelation EliminateVariable(const GeneralizedRelation& relation,
                                      int var);

/// Projection onto the listed columns, in the listed order: eliminates every
/// other variable, then reindexes keep[i] -> i.
GeneralizedRelation ProjectColumns(const GeneralizedRelation& relation,
                                   const std::vector<int>& keep);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_DENSE_QE_H_
