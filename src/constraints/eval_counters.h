#ifndef DODB_CONSTRAINTS_EVAL_COUNTERS_H_
#define DODB_CONSTRAINTS_EVAL_COUNTERS_H_

#include <cstdint>
#include <string>

namespace dodb {

/// One coherent reading of the engine-wide evaluation counters (plain
/// integers; subtract two snapshots to attribute work to a query). Times are
/// wall-clock nanoseconds accumulated on whichever thread did the work.
struct EvalCounterSnapshot {
  uint64_t pairs_considered = 0;   // candidate tuple pairs enumerated
  uint64_t pairs_pruned = 0;       // pairs skipped: bound boxes disjoint
  uint64_t canonicalized = 0;      // candidates run through closure/canon
  uint64_t subsumption_checks = 0; // EntailsTuple calls during merges
  uint64_t hash_skips = 0;         // duplicate searches skipped by hash set
  uint64_t index_builds = 0;       // relation/join index constructions
  uint64_t index_probes = 0;       // probe-side lookups against an index
  uint64_t index_build_ns = 0;
  uint64_t index_probe_ns = 0;
  uint64_t shard_pairs_considered = 0;  // shard pairs examined by joins
  uint64_t shard_pairs_pruned = 0;      // shard pairs skipped: covers disjoint
  uint64_t shard_index_builds = 0;      // shard structure + per-shard indexes
  uint64_t planner_reorders = 0;        // join-order / side-pick deviations
  uint64_t closure_memo_hits = 0;       // canonicalizations served from memo
  uint64_t guard_checkpoints = 0;       // query-guard checkpoints recorded
  uint64_t guard_trips = 0;             // queries aborted by the guard
  uint64_t storage_bytes_written = 0;   // bytes appended to snapshots/WAL
  uint64_t storage_fsyncs = 0;          // fsync calls (files + directories)
  uint64_t wal_records_appended = 0;    // logical ops logged to the WAL
  uint64_t wal_records_replayed = 0;    // logical ops reapplied by recovery
  uint64_t snapshots_written = 0;       // checkpoint snapshots published
  uint64_t storage_recovery_ns = 0;     // wall time spent in Open() recovery
  uint64_t canonical_forms = 0;         // canonical atom lists emitted
  uint64_t canonical_atoms = 0;         // atoms across those lists (avg =
                                        // canonical_atoms / canonical_forms)
  uint64_t canonical_atoms_max = 0;     // largest single list (high-water
                                        // mark, not a delta: operator- keeps
                                        // the later snapshot's value)
  uint64_t arena_bytes = 0;             // atom-arena storage allocated
  uint64_t arena_reuse_hits = 0;        // tuples stored by re-pointing at an
                                        // already-placed arena span
  uint64_t view_delta_tuples = 0;       // base+derived delta tuples pushed
                                        // through incremental view passes
  uint64_t view_rederivations = 0;      // over-deleted view tuples restored
                                        // by the DRed re-derive firing
  uint64_t view_full_recomputes = 0;    // view maintenance passes that fell
                                        // back to a from-scratch fixpoint
  uint64_t view_maintenance_ns = 0;     // wall time inside ApplyDelta /
                                        // Recompute across all views
  uint64_t page_cache_hits = 0;         // buffer-pool fetches served from a
                                        // resident frame
  uint64_t page_cache_misses = 0;       // fetches that had to read the page
                                        // file (or allocate a fresh page)
  uint64_t page_evictions = 0;          // frames recycled by CLOCK
  uint64_t page_writeback_bytes = 0;    // dirty-page bytes written back to
                                        // spill files
  uint64_t paged_runs_fetched = 0;      // tuple runs decoded from a record
                                        // store by streaming operators
  uint64_t paged_spill_bytes = 0;       // encoded run payload bytes written
                                        // into record stores by spills
  uint64_t paged_materializations = 0;  // paged relations fully decoded back
                                        // to a resident tuple vector

  EvalCounterSnapshot operator-(const EvalCounterSnapshot& since) const;
  /// Multi-line human-readable rendering (shell \stats).
  std::string ToString() const;
};

/// Process-wide atomic counters behind the per-query EvalStats and the shell
/// \stats report. Updated with relaxed atomics from pool workers and the
/// merge thread; reads are snapshots, not barriers. Counter values are
/// observability only — no evaluation decision ever reads them, so they
/// cannot perturb the determinism contract.
class EvalCounters {
 public:
  static void AddPairsConsidered(uint64_t n);
  static void AddPairsPruned(uint64_t n);
  static void AddCanonicalized(uint64_t n);
  static void AddSubsumptionChecks(uint64_t n);
  static void AddHashSkips(uint64_t n);
  static void AddIndexBuild(uint64_t ns);
  static void AddIndexProbes(uint64_t n, uint64_t ns);
  static void AddShardPairs(uint64_t considered, uint64_t pruned);
  static void AddShardIndexBuilds(uint64_t n);
  static void AddPlannerReorders(uint64_t n);
  static void AddClosureMemoHits(uint64_t n);
  static void AddGuardCheckpoints(uint64_t n);
  static void AddGuardTrips(uint64_t n);
  static void AddStorageBytesWritten(uint64_t n);
  static void AddStorageFsyncs(uint64_t n);
  static void AddWalRecordsAppended(uint64_t n);
  static void AddWalRecordsReplayed(uint64_t n);
  static void AddSnapshotsWritten(uint64_t n);
  static void AddStorageRecoveryNs(uint64_t ns);
  /// One canonical atom list of `atoms` atoms was emitted (updates the
  /// form/atom totals and the high-water mark).
  static void AddCanonicalForm(uint64_t atoms);
  static void AddArenaBytes(uint64_t n);
  static void AddArenaReuseHits(uint64_t n);
  static void AddViewDeltaTuples(uint64_t n);
  static void AddViewRederivations(uint64_t n);
  static void AddViewFullRecomputes(uint64_t n);
  static void AddViewMaintenanceNs(uint64_t ns);
  static void AddPageCacheHits(uint64_t n);
  static void AddPageCacheMisses(uint64_t n);
  static void AddPageEvictions(uint64_t n);
  static void AddPageWritebackBytes(uint64_t n);
  static void AddPagedRunsFetched(uint64_t n);
  static void AddPagedSpillBytes(uint64_t n);
  static void AddPagedMaterializations(uint64_t n);

  static EvalCounterSnapshot Snapshot();
};

/// Whether the signature/index fast paths are enabled on this thread.
/// Defaults to true; evaluators install an IndexModeScope from
/// EvalOptions::use_index so the legacy all-pairs path stays selectable as
/// an ablation baseline. Outputs are bit-identical either way — the index
/// only skips provably-unsatisfiable candidates and provably-non-subsuming
/// comparisons.
bool IndexingEnabled();

/// RAII thread-local override of IndexingEnabled(), mirroring
/// EvalThreadsScope. The setting travels into pool workers through
/// EvalOptions (each rule job installs its own scope), not through thread
/// inheritance.
class IndexModeScope {
 public:
  explicit IndexModeScope(bool enabled);
  ~IndexModeScope();
  IndexModeScope(const IndexModeScope&) = delete;
  IndexModeScope& operator=(const IndexModeScope&) = delete;

 private:
  bool prev_;
};

/// Whether the sharded storage fast paths (shard-pair pruned joins,
/// shard-skipping subsumption scans, the selectivity planner) are enabled on
/// this thread. Defaults to true; only consulted when IndexingEnabled() also
/// holds — shards live inside the relation index. Outputs are bit-identical
/// either way: shard-pair pruning removes only pairs the per-pair signature
/// test would remove, and the planner only changes enumeration order /
/// fold order of canonically order-independent merges.
bool ShardingEnabled();

/// RAII thread-local override of ShardingEnabled(), mirroring
/// IndexModeScope (travels into pool workers through EvalOptions).
class ShardModeScope {
 public:
  explicit ShardModeScope(bool enabled);
  ~ShardModeScope();
  ShardModeScope(const ShardModeScope&) = delete;
  ShardModeScope& operator=(const ShardModeScope&) = delete;

 private:
  bool prev_;
};

/// Whether OrderGraph::Close uses the restricted path-consistency sweep
/// (skip compositions through unconstrained edges; skip refinement of
/// constant-constant pairs, whose seeded relation is exact). Defaults to
/// true; disabling it restores the previous milestone's full PC-1 sweep as
/// an ablation baseline for the perf benchmarks. The restricted sweep
/// reaches the same unique path-consistent fixpoint and the same
/// satisfiability verdict (see the proof sketch in order_graph.cc), so the
/// setting never changes any result, only wall-clock.
bool ClosureFastPathEnabled();

/// RAII thread-local override of ClosureFastPathEnabled(). Canonicalization
/// runs on pool workers, so the parallel insertion paths read the flag on
/// the dispatching thread and re-install it inside each worker job, the same
/// way the closure memo pointer travels.
class ClosureFastPathScope {
 public:
  explicit ClosureFastPathScope(bool enabled);
  ~ClosureFastPathScope();
  ClosureFastPathScope(const ClosureFastPathScope&) = delete;
  ClosureFastPathScope& operator=(const ClosureFastPathScope&) = delete;

 private:
  bool prev_;
};

/// Whether OrderGraph::CanonicalAtoms emits the minimal canonical form:
/// per variable only the tightest constant lower and upper bound (plus
/// equality and surviving inequations), dropping every var-const atom
/// implied by transitivity through the constant scale. Defaults to true;
/// disabling it restores the previous milestone's full closure form (one
/// atom per informative var-const pair) as an ablation baseline. The two
/// forms are logically equivalent conjunctions — see DESIGN.md §12 — but
/// they are *different strings*, so the mode is part of the canonical-form
/// contract: relations built under one mode must not be structurally
/// compared against relations built under the other (semantic comparison
/// via cells::SemanticallyEqual is mode-oblivious), and the closure cache
/// keys its fingerprints on the mode bit.
bool MinimalCanonicalEnabled();

/// RAII thread-local override of MinimalCanonicalEnabled(), mirroring
/// ClosureFastPathScope: canonicalization runs on pool workers, so the
/// parallel insertion paths read the flag on the dispatching thread and
/// re-install it inside each worker job.
class MinimalCanonicalScope {
 public:
  explicit MinimalCanonicalScope(bool enabled);
  ~MinimalCanonicalScope();
  MinimalCanonicalScope(const MinimalCanonicalScope&) = delete;
  MinimalCanonicalScope& operator=(const MinimalCanonicalScope&) = delete;

 private:
  bool prev_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_EVAL_COUNTERS_H_
