#ifndef DODB_CONSTRAINTS_RELATION_SHARDS_H_
#define DODB_CONSTRAINTS_RELATION_SHARDS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "constraints/relation_index.h"
#include "constraints/tuple_signature.h"

namespace dodb {

/// Signature-bound partitioning of a relation's tuple vector into shards:
/// first-column interval buckets cut at quantiles of the tuples' lower
/// bounds, so tuples whose boxes start nearby land in the same shard. The
/// assignment is position-parallel to the tuple vector (shard_of(pos)), so
/// it mirrors the relation's sorted-insert/erase positions exactly, like
/// RelationIndex does.
///
/// What it buys:
///   - shard-pair pruning: each shard keeps a widen-only cover box (the
///     interval hull of its members' signatures). Two shards whose covers
///     are disjoint on some column cannot contain an overlapping tuple pair,
///     so joins and subsumption scans skip whole shards instead of testing
///     tuple pairs one by one;
///   - per-shard parallelism: surviving shard pairs are independent units of
///     work dispatched to the thread pool (see algebra/relational_ops);
///   - planner statistics: per-shard cardinality, cover spread and distinct
///     canonical-hash counts double as the histogram the join planner reads
///     (algebra/join_planner).
///
/// Determinism: pruning by covers is a strict superset filter of the
/// per-pair signature test (a member box is contained in its shard's cover,
/// so disjoint covers imply every member pair disjoint), and shard layout
/// never influences which candidates survive — only which ones are tested.
/// Results are therefore bit-identical to the unsharded path regardless of
/// cut placement, rebuild timing, or thread count.
///
/// Maintenance: InsertAt/EraseAt incrementally update the assignment and the
/// per-shard aggregates (covers only widen; a post-erase cover may be wider
/// than the exact hull, which is sound for pruning). Once the relation has
/// doubled since the cuts were computed the quantiles are stale; the owner
/// (RelationIndex) drops the sharding on NeedsRebuild() and the next use
/// rebuilds it from scratch, deterministically.
///
/// Mutation is single-threaded (owning thread only), matching the relation
/// contract; the lazy per-shard caches (member lists, per-shard interval
/// indexes) are mutex-guarded so concurrent readers of a shared snapshot can
/// fault them in safely.
class RelationShards {
 public:
  /// Below this many tuples a relation stays effectively unsharded (one
  /// shard); the pair-enumeration savings cannot pay for the bookkeeping.
  static constexpr size_t kMinTuples = 32;
  /// Tuples per shard the builder aims for.
  static constexpr size_t kTargetSize = 16;
  /// Hard cap on shard count (keeps the shard-pair matrix small).
  static constexpr size_t kMaxShards = 64;

  /// Deterministic quantile build over `signatures` (position-parallel).
  explicit RelationShards(const std::vector<TupleSignature>& signatures);

  // Copies carry the assignment, cuts and aggregates; the lazy member/index
  // caches are rebuilt on demand (they hold pointers into the source).
  RelationShards(const RelationShards& other);
  RelationShards& operator=(const RelationShards& other);

  /// Mirror of tuples.insert(tuples.begin() + pos, tuple).
  void InsertAt(size_t pos, const TupleSignature& signature);
  /// Mirror of tuples.erase(tuples.begin() + pos); `hash` is the erased
  /// tuple's canonical-form hash (read before the erase).
  void EraseAt(size_t pos, size_t hash);

  size_t shard_count() const { return stats_.size(); }
  size_t tuple_count() const { return shard_of_.size(); }
  uint32_t shard_of(size_t pos) const { return shard_of_[pos]; }

  /// Per-shard aggregates, maintained incrementally.
  struct ShardStats {
    size_t size = 0;           // current member count
    bool cover_seeded = false; // false while the shard has never had a member
    TupleSignature cover;      // widen-only hull of member signatures
    // Canonical-hash multiset of the members; .size() approximates the
    // shard's distinct-tuple count for the planner.
    std::unordered_map<size_t, uint32_t> hashes;
  };
  const ShardStats& stats(uint32_t shard) const { return stats_[shard]; }

  /// True once the relation has grown to twice the size the cuts were
  /// computed for — the owner should drop and lazily rebuild the sharding.
  bool NeedsRebuild() const {
    return shard_of_.size() > 2 * built_size_ + kMinTuples;
  }

  /// Ascending member positions of `shard`. Built lazily for all shards in
  /// one pass; invalidated by any InsertAt/EraseAt. Thread-safe for
  /// concurrent readers of a shared snapshot.
  const std::vector<size_t>& Members(uint32_t shard) const;

  /// Lazy per-shard interval index over `column`: entries are the shard's
  /// member signatures, and AppendCandidates positions are *local* (indexes
  /// into Members(shard)). `signatures` must be the vector this sharding is
  /// maintained against; the returned pointer stays valid until the next
  /// mutation. Thread-safe like Members().
  const ColumnIntervalIndex* ShardIntervals(
      uint32_t shard, int column,
      const std::vector<TupleSignature>& signatures) const;

  /// Test hook: internal consistency against the signature vector the
  /// sharding claims to mirror — assignment matches the cut function,
  /// per-shard sizes and hash multisets match a recount, and every member's
  /// box is contained in its shard's cover.
  bool SoundFor(const std::vector<TupleSignature>& signatures) const;

 private:
  uint32_t ShardFor(const TupleSignature& signature) const;
  void Absorb(uint32_t shard, const TupleSignature& signature);
  void InvalidateCaches();
  void EnsureMembers() const;  // callers hold lazy_mu_

  // Ascending first-column cut keys (lower sides only); shard i holds the
  // tuples whose first-column lower bound sits at or above cut i-1 and
  // below cut i. stats_.size() == cuts_.size() + 1.
  std::vector<ColumnBound> cuts_;
  std::vector<uint32_t> shard_of_;  // position-parallel to the tuple vector
  std::vector<ShardStats> stats_;
  size_t built_size_ = 0;  // tuple count the cuts were computed for

  // Lazy caches; see Members()/ShardIntervals().
  mutable std::mutex lazy_mu_;
  mutable bool members_built_ = false;
  mutable std::vector<std::vector<size_t>> members_;
  mutable std::vector<std::vector<std::unique_ptr<ColumnIntervalIndex>>>
      shard_intervals_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_RELATION_SHARDS_H_
