#include "constraints/order_graph.h"

#include <algorithm>
#include <queue>

#include "constraints/eval_counters.h"
#include "core/check.h"
#include "core/query_guard.h"

namespace dodb {

PaRel RelOpToPa(RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return kPaLt;
    case RelOp::kLe:
      return kPaLe;
    case RelOp::kEq:
      return kPaEq;
    case RelOp::kNeq:
      return kPaNeq;
    case RelOp::kGe:
      return kPaGe;
    case RelOp::kGt:
      return kPaGt;
  }
  DODB_CHECK(false);
  return kPaAll;
}

RelOp PaToRelOp(PaRel rel) {
  switch (rel) {
    case kPaLt:
      return RelOp::kLt;
    case kPaLe:
      return RelOp::kLe;
    case kPaEq:
      return RelOp::kEq;
    case kPaNeq:
      return RelOp::kNeq;
    case kPaGe:
      return RelOp::kGe;
    case kPaGt:
      return RelOp::kGt;
    default:
      DODB_CHECK_MSG(false, "PaToRelOp on trivial relation");
      return RelOp::kEq;
  }
}

PaRel PaCompose(PaRel r1, PaRel r2) {
  // Composition of basic relations over a dense total order.
  static constexpr PaRel kBasicCompose[3][3] = {
      // r2:   <        =      >
      {kPaLt, kPaLt, kPaAll},   // r1 = <
      {kPaLt, kPaEq, kPaGt},    // r1 = =
      {kPaAll, kPaGt, kPaGt},   // r1 = >
  };
  PaRel out = kPaEmpty;
  for (int i = 0; i < 3; ++i) {
    if (!(r1 & (1 << i))) continue;
    for (int j = 0; j < 3; ++j) {
      if (!(r2 & (1 << j))) continue;
      out |= kBasicCompose[i][j];
    }
  }
  return out;
}

PaRel PaInverse(PaRel rel) {
  PaRel out = rel & kPaEq;
  if (rel & kPaLt) out |= kPaGt;
  if (rel & kPaGt) out |= kPaLt;
  return out;
}

OrderGraph::OrderGraph(int num_vars) : num_vars_(num_vars) {
  DODB_CHECK(num_vars >= 0);
  node_terms_.reserve(num_vars);
  for (int i = 0; i < num_vars; ++i) node_terms_.push_back(Term::Var(i));
}

int OrderGraph::NodeForConstant(const Rational& value) {
  auto it = constant_nodes_.find(value);
  if (it != constant_nodes_.end()) return it->second;
  int node = static_cast<int>(node_terms_.size());
  node_terms_.push_back(Term::Const(value));
  constant_nodes_.emplace(value, node);
  return node;
}

void OrderGraph::AddAtom(const DenseAtom& atom) {
  closed_ = false;
  const Term& lhs = atom.lhs();
  const Term& rhs = atom.rhs();
  if (lhs.is_const() && rhs.is_const()) {
    if (!OpHolds(lhs.constant().Compare(rhs.constant()), atom.op())) {
      forced_unsat_ = true;
    }
    return;
  }
  if (lhs.is_var() && rhs.is_var() && lhs.var() == rhs.var()) {
    // x op x: holds iff op admits equality.
    if (!OpHolds(0, atom.op())) forced_unsat_ = true;
    return;
  }
  int a = lhs.is_var() ? lhs.var() : NodeForConstant(lhs.constant());
  int b = rhs.is_var() ? rhs.var() : NodeForConstant(rhs.constant());
  DODB_CHECK_MSG(!lhs.is_var() || lhs.var() < num_vars_,
                 "atom variable out of range");
  DODB_CHECK_MSG(!rhs.is_var() || rhs.var() < num_vars_,
                 "atom variable out of range");
  pending_.push_back({{a, b}, RelOpToPa(atom.op())});
}

void OrderGraph::Set(int a, int b, PaRel rel) {
  int n = num_nodes();
  rel_[a * n + b] = rel;
  rel_[b * n + a] = PaInverse(rel);
}

void OrderGraph::EnsureMatrix(bool seed_constants) {
  int n = num_nodes();
  rel_.assign(static_cast<size_t>(n) * n, kPaAll);
  for (int i = 0; i < n; ++i) rel_[i * n + i] = kPaEq;
  // Constant nodes carry their exact mutual order; record it as value ranks
  // (the map iterates in value order). The restricted sweep reads
  // constant-constant relations through RelAt, so the O(C^2) matrix seeding
  // is only materialized for the legacy full sweep, which visits those
  // entries directly.
  const_rank_.assign(n, 0);
  int rank = 0;
  for (const auto& [value, node] : constant_nodes_) const_rank_[node] = rank++;
  if (seed_constants) {
    for (auto it = constant_nodes_.begin(); it != constant_nodes_.end();
         ++it) {
      auto jt = it;
      for (++jt; jt != constant_nodes_.end(); ++jt) {
        // it->first < jt->first by map order.
        Set(it->second, jt->second, kPaLt);
      }
    }
  }
}

PaRel OrderGraph::RelAt(int i, int j) const {
  if (i >= num_vars_ && j >= num_vars_) {
    const int d = const_rank_[i] - const_rank_[j];
    if (d < 0) return kPaLt;
    if (d > 0) return kPaGt;
    return kPaEq;
  }
  return rel_[i * static_cast<int>(node_terms_.size()) + j];
}

bool OrderGraph::Close() {
  if (closed_) return satisfiable_;
  closed_ = true;
  satisfiable_ = !forced_unsat_;
  if (!satisfiable_) return false;
  const bool fast = ClosureFastPathEnabled();
  EnsureMatrix(/*seed_constants=*/!fast);
  int n = num_nodes();
  for (const auto& [edge, mask] : pending_) {
    PaRel cur = rel_[edge.first * n + edge.second] & mask;
    if (cur == kPaEmpty) {
      satisfiable_ = false;
      return false;
    }
    Set(edge.first, edge.second, cur);
  }
  // Path consistency (PC-1). Node counts per tuple are small, so the simple
  // fixpoint loop is preferable to a queue-based PC-2. The restricted sweep
  // (default; ClosureFastPathEnabled) adds two sound skips that keep the
  // loop from drowning in constant nodes (canonical tuples mention one node
  // per distinct constant, and those dominate n on realistic data):
  //   - PaCompose(kPaAll, r) == PaCompose(r, kPaAll) == kPaAll for every
  //     nonempty r, so compositions through an unconstrained edge never
  //     refine anything.
  //   - Constant-constant entries are seeded with the exact basic relation
  //     realized by the two values, so the only possible "refinement" is to
  //     empty; at the fixpoint of the remaining triangles that cannot
  //     happen. Sketch: suppose composing i -> k -> j would empty the
  //     constant pair (i, j) with seeded basic relation b(i,j). k must be a
  //     variable (constant-constant-constant triangles are consistent by
  //     construction: the seeds are realized by actual values). Emptiness
  //     means PaCompose(rel(i,k), rel(k,j)) excludes b(i,j); but the
  //     variable-involved pair (k, j) is enforced at the restricted
  //     fixpoint, i.e. rel(k,j) <= PaCompose(PaInverse(rel(i,k)), b(i,j)),
  //     which makes b(i,j) a member of the composition — contradiction.
  //     The restricted fixpoint is therefore a fixpoint of the full PC-1
  //     operator; path-consistent closure is unique, so the matrix and the
  //     satisfiability verdict are bit-identical to the full sweep's.
  // The full sweep is kept selectable as the previous milestone's
  // behaviour, so perf benchmarks can ablate the restriction.
  // A guard trip abandons the sweep with closed_ reset, so no cached
  // verdict survives from a partially propagated matrix; the caller's
  // current computation is discarded (the evaluator returns the trip
  // Status) and a later re-Close restarts from the pending edges.
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kClosureSweep);
  const int nv = fast ? num_vars_ : n;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        if (i == k) continue;
        if (!ticker.Tick()) {
          closed_ = false;
          return false;
        }
        PaRel rik = RelAt(i, k);
        if (fast && rik == kPaAll) continue;
        const int j_limit = (i < nv) ? n : nv;
        for (int j = 0; j < j_limit; ++j) {
          if (j == i || j == k) continue;
          PaRel rkj = RelAt(k, j);
          if (fast && rkj == kPaAll) continue;
          PaRel composed = PaCompose(rik, rkj);
          PaRel cur = RelAt(i, j);
          PaRel refined = cur & composed;
          if (refined != cur) {
            if (refined == kPaEmpty) {
              satisfiable_ = false;
              return false;
            }
            Set(i, j, refined);
            changed = true;
          }
        }
      }
    }
  }
  return satisfiable_;
}

PaRel OrderGraph::RelBetween(int a, int b) {
  bool sat = Close();
  DODB_CHECK_MSG(sat, "RelBetween on unsatisfiable network");
  return RelAt(a, b);
}

PaRel OrderGraph::RelToValue(int var, const Rational& value) {
  bool sat = Close();
  DODB_CHECK_MSG(sat, "RelToValue on unsatisfiable network");
  // Only the scale constants adjacent to `value` matter: after closure the
  // relation of `var` to the constants is monotone along the scale (the
  // constant-constant edges force e.g. var <= c to propagate to every
  // larger constant), so the nearest neighbors dominate the intersection.
  auto it = constant_nodes_.lower_bound(value);
  if (it != constant_nodes_.end() && it->first == value) {
    return RelBetween(var, it->second);
  }
  PaRel out = kPaAll;
  if (it != constant_nodes_.end()) {
    // it->first is the smallest constant above value.
    out &= PaCompose(RelBetween(var, it->second), kPaGt);
  }
  if (it != constant_nodes_.begin()) {
    auto below = std::prev(it);
    out &= PaCompose(RelBetween(var, below->second), kPaLt);
  }
  return out;
}

bool OrderGraph::Entails(const DenseAtom& atom) {
  if (!Close()) return true;  // ex falso
  const Term& lhs = atom.lhs();
  const Term& rhs = atom.rhs();
  PaRel mask = RelOpToPa(atom.op());
  if (lhs.is_const() && rhs.is_const()) {
    return OpHolds(lhs.constant().Compare(rhs.constant()), atom.op());
  }
  if (lhs.is_var() && rhs.is_var() && lhs.var() == rhs.var()) {
    return OpHolds(0, atom.op());
  }
  PaRel known;
  if (lhs.is_var() && rhs.is_var()) {
    known = RelBetween(lhs.var(), rhs.var());
  } else if (lhs.is_var()) {
    known = RelToValue(lhs.var(), rhs.constant());
  } else {
    known = PaInverse(RelToValue(rhs.var(), lhs.constant()));
  }
  return (known & ~mask) == 0;
}

std::vector<DenseAtom> OrderGraph::CanonicalAtoms() {
  return CanonicalAtomVec().ToVector();
}

AtomVec OrderGraph::CanonicalAtomVec() {
  bool sat = Close();
  DODB_CHECK_MSG(sat, "CanonicalAtoms on unsatisfiable network");
  AtomVec atoms;
  int n = num_nodes();
  const bool minimal = MinimalCanonicalEnabled();
  // Constants all have node ids >= num_vars_, so the pairs that survive the
  // constant-constant skip are exactly var-var (i < j) and var-const. Walking
  // the var partner block in index order and the constant partner block in
  // value order (constant_nodes_ iterates by value) emits the atoms already
  // in DenseAtom order — every atom has lhs = x_i (so it is oriented), lhs
  // groups are ascending, and within a group the rhs runs over variables by
  // index and then constants by value, which is exactly Term order. Callers
  // can install the list without re-sorting or re-orienting.
  for (int i = 0; i < num_vars_; ++i) {
    for (int j = i + 1; j < num_vars_; ++j) {
      PaRel rel = rel_[i * n + j];
      if (rel == kPaAll) continue;
      atoms.push_back(
          DenseAtom(node_terms_[i], PaToRelOp(rel), node_terms_[j]));
    }
    if (!minimal) {
      // Full form: one atom per informative var-const pair. A tuple at
      // transitive-closure depth d mentions ~d constants, so this block —
      // and with it every downstream compare, hash and re-closure — grows
      // linearly with derivation depth.
      for (const auto& [value, node] : constant_nodes_) {
        PaRel rel = rel_[i * n + node];
        if (rel == kPaAll) continue;
        atoms.push_back(
            DenseAtom(node_terms_[i], PaToRelOp(rel), node_terms_[node]));
      }
      continue;
    }
    // Minimal form: drop every var-const atom implied by transitivity
    // through the constant scale. After closure the relation of x_i to the
    // scale is monotone (constant-constant edges are exact, so e.g.
    // x >= c propagates x > c' to every c' < c): below the tightest lower
    // bound every relation is exactly {>}, above the tightest upper bound
    // exactly {<}, and an inequation survives only strictly between the
    // bounds (at a bound it is absorbed: {>=} ∩ {≠} = {>}). Hence
    //   { equality }                                 when one exists, else
    //   { tightest lower, surviving ≠s, tightest upper }
    // conjoined with the ground constant order entails the full form, and
    // is a subset of it — the two are logically equivalent. First pass:
    // locate the selected nodes. Second pass: emit them, which reproduces
    // value order (hence Term order) without a sort.
    int eq_node = -1;
    int lower_node = -1;  // largest constant with rel ∈ {>, >=}
    int upper_node = -1;  // smallest constant with rel ∈ {<, <=}
    bool has_neq = false;
    for (const auto& [value, node] : constant_nodes_) {
      PaRel rel = rel_[i * n + node];
      if (rel == kPaAll) continue;
      if (rel == kPaEq) {
        eq_node = node;
        break;
      }
      if ((rel & kPaLt) == 0) {
        lower_node = node;  // ascending walk: the last lower bound wins
      } else if ((rel & kPaGt) == 0) {
        if (upper_node < 0) upper_node = node;  // the first upper bound wins
      } else {
        has_neq = true;  // kPaNeq
      }
    }
    if (eq_node >= 0) {
      // x_i = c entails every other var-const relation of x_i (through the
      // exact constant order), so the equality atom stands alone.
      atoms.push_back(
          DenseAtom(node_terms_[i], RelOp::kEq, node_terms_[eq_node]));
      continue;
    }
    if (lower_node < 0 && upper_node < 0 && !has_neq) continue;
    for (const auto& [value, node] : constant_nodes_) {
      if (node != lower_node && node != upper_node) {
        if (!has_neq) continue;
        if (rel_[i * n + node] != kPaNeq) continue;
      }
      PaRel rel = rel_[i * n + node];
      atoms.push_back(
          DenseAtom(node_terms_[i], PaToRelOp(rel), node_terms_[node]));
    }
  }
  EvalCounters::AddCanonicalForm(atoms.size());
  return atoms;
}

std::optional<Term> OrderGraph::EqualityRep(int var) {
  if (!Close()) return std::nullopt;
  int n = num_nodes();
  std::optional<Term> best;
  for (int j = 0; j < n; ++j) {
    if (j == var) continue;
    if (rel_[var * n + j] != kPaEq) continue;
    const Term& t = node_terms_[j];
    if (t.is_const()) return t;  // constants are the preferred reps
    if (!best.has_value() || t.var() < best->var()) best = t;
  }
  return best;
}

std::optional<std::vector<Rational>> OrderGraph::SampleWitness() {
  if (!Close()) return std::nullopt;
  int n = num_nodes();
  if (n == 0) return std::vector<Rational>();

  // 1. Equality classes.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (RelAt(i, j) == kPaEq) parent[find(i)] = find(j);
    }
  }
  std::vector<int> class_of(n);
  std::vector<int> reps;
  for (int i = 0; i < n; ++i) {
    int r = find(i);
    if (r == i) reps.push_back(i);
  }
  std::vector<int> rep_index(n, -1);
  for (size_t c = 0; c < reps.size(); ++c) rep_index[reps[c]] = c;
  for (int i = 0; i < n; ++i) class_of[i] = rep_index[find(i)];
  int num_classes = static_cast<int>(reps.size());

  // Pinned value per class (class containing a constant node).
  std::vector<std::optional<Rational>> pin(num_classes);
  for (int i = 0; i < n; ++i) {
    if (node_terms_[i].is_const()) pin[class_of[i]] = node_terms_[i].constant();
  }

  // 2. Strictifiable order edges between distinct classes: i -> j whenever
  //    the closed relation forbids i > j.
  std::vector<std::vector<bool>> edge(num_classes,
                                      std::vector<bool>(num_classes, false));
  std::vector<int> indegree(num_classes, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int ci = class_of[i];
      int cj = class_of[j];
      if (ci == cj) continue;
      PaRel rel = RelAt(i, j);
      if ((rel & kPaGt) == 0 && !edge[ci][cj]) {
        edge[ci][cj] = true;
        ++indegree[cj];
      }
    }
  }

  // 3. Topological order (Kahn, smallest-index first for determinism).
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (int c = 0; c < num_classes; ++c) {
    if (indegree[c] == 0) ready.push(c);
  }
  std::vector<int> topo;
  topo.reserve(num_classes);
  while (!ready.empty()) {
    int c = ready.top();
    ready.pop();
    topo.push_back(c);
    for (int d = 0; d < num_classes; ++d) {
      if (edge[c][d] && --indegree[d] == 0) ready.push(d);
    }
  }
  DODB_CHECK_MSG(static_cast<int>(topo.size()) == num_classes,
                 "cycle in closed order graph");

  // 4. Assign strictly increasing values along the topological order,
  //    pinned classes keeping their constants. Runs of unpinned classes are
  //    spread strictly inside the surrounding pin interval.
  std::vector<Rational> value(num_classes);
  size_t pos = 0;
  std::optional<Rational> lo;  // value of the most recent pinned class
  while (pos < topo.size()) {
    if (pin[topo[pos]].has_value()) {
      value[topo[pos]] = *pin[topo[pos]];
      lo = value[topo[pos]];
      ++pos;
      continue;
    }
    // Maximal run of unpinned classes [pos, end).
    size_t end = pos;
    while (end < topo.size() && !pin[topo[end]].has_value()) ++end;
    std::optional<Rational> hi =
        end < topo.size() ? std::optional<Rational>(*pin[topo[end]])
                          : std::nullopt;
    int64_t run = static_cast<int64_t>(end - pos);
    for (int64_t i = 0; i < run; ++i) {
      Rational v;
      if (lo.has_value() && hi.has_value()) {
        v = *lo + (*hi - *lo) * Rational(i + 1, run + 1);
      } else if (lo.has_value()) {
        v = *lo + Rational(i + 1);
      } else if (hi.has_value()) {
        v = *hi - Rational(run - i);
      } else {
        v = Rational(i);
      }
      value[topo[pos + i]] = v;
    }
    pos = end;
  }

  std::vector<Rational> point(num_vars_);
  for (int i = 0; i < num_vars_; ++i) point[i] = value[class_of[i]];
  return point;
}

}  // namespace dodb
