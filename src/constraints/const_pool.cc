#include "constraints/const_pool.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "core/check.h"

namespace dodb {

namespace {

struct Entry {
  Rational value;
  size_t hash = 0;
};

constexpr uint32_t kChunkBits = 10;
constexpr uint32_t kChunkSize = 1u << kChunkBits;  // 1024 entries per chunk
constexpr uint32_t kMaxChunks = 1u << 14;          // 16M constants total

struct RationalHash {
  size_t operator()(const Rational& r) const { return r.Hash(); }
};

struct Pool {
  // Chunk pointers are published with release stores after the chunk is
  // fully constructed, so a reader holding a slot (obtained through any
  // synchronizing channel — typically a task queue) sees initialized
  // storage via the acquire load.
  std::atomic<Entry*> chunks[kMaxChunks] = {};
  std::atomic<uint32_t> count{0};
  std::shared_mutex mu;
  std::unordered_map<Rational, uint32_t, RationalHash> slots;  // under mu
};

Pool& Global() {
  static Pool* pool = new Pool();  // leaked: Terms hold slots forever
  return *pool;
}

}  // namespace

uint32_t ConstPool::Intern(const Rational& value) {
  Pool& pool = Global();
  {
    std::shared_lock<std::shared_mutex> lock(pool.mu);
    auto it = pool.slots.find(value);
    if (it != pool.slots.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(pool.mu);
  auto [it, inserted] = pool.slots.try_emplace(value, 0);
  if (!inserted) return it->second;
  const uint32_t slot = pool.count.load(std::memory_order_relaxed);
  const uint32_t chunk_index = slot >> kChunkBits;
  DODB_CHECK_MSG(chunk_index < kMaxChunks, "constant pool exhausted");
  Entry* chunk = pool.chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    pool.chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  Entry& entry = chunk[slot & (kChunkSize - 1)];
  entry.value = value;
  entry.hash = value.Hash();
  // Publish after the entry is written: readers that learn the slot through
  // any happens-before edge (including this release) observe the entry.
  pool.count.store(slot + 1, std::memory_order_release);
  it->second = slot;
  return slot;
}

const Rational& ConstPool::Value(uint32_t slot) {
  Entry* chunk =
      Global().chunks[slot >> kChunkBits].load(std::memory_order_acquire);
  return chunk[slot & (kChunkSize - 1)].value;
}

size_t ConstPool::HashOf(uint32_t slot) {
  Entry* chunk =
      Global().chunks[slot >> kChunkBits].load(std::memory_order_acquire);
  return chunk[slot & (kChunkSize - 1)].hash;
}

size_t ConstPool::size() {
  return Global().count.load(std::memory_order_acquire);
}

}  // namespace dodb
