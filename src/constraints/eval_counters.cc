#include "constraints/eval_counters.h"

#include <atomic>

#include "core/str_util.h"

namespace dodb {

namespace {

struct Counters {
  std::atomic<uint64_t> pairs_considered{0};
  std::atomic<uint64_t> pairs_pruned{0};
  std::atomic<uint64_t> canonicalized{0};
  std::atomic<uint64_t> subsumption_checks{0};
  std::atomic<uint64_t> hash_skips{0};
  std::atomic<uint64_t> index_builds{0};
  std::atomic<uint64_t> index_probes{0};
  std::atomic<uint64_t> index_build_ns{0};
  std::atomic<uint64_t> index_probe_ns{0};
  std::atomic<uint64_t> shard_pairs_considered{0};
  std::atomic<uint64_t> shard_pairs_pruned{0};
  std::atomic<uint64_t> shard_index_builds{0};
  std::atomic<uint64_t> planner_reorders{0};
  std::atomic<uint64_t> closure_memo_hits{0};
  std::atomic<uint64_t> guard_checkpoints{0};
  std::atomic<uint64_t> guard_trips{0};
  std::atomic<uint64_t> storage_bytes_written{0};
  std::atomic<uint64_t> storage_fsyncs{0};
  std::atomic<uint64_t> wal_records_appended{0};
  std::atomic<uint64_t> wal_records_replayed{0};
  std::atomic<uint64_t> snapshots_written{0};
  std::atomic<uint64_t> storage_recovery_ns{0};
  std::atomic<uint64_t> canonical_forms{0};
  std::atomic<uint64_t> canonical_atoms{0};
  std::atomic<uint64_t> canonical_atoms_max{0};
  std::atomic<uint64_t> arena_bytes{0};
  std::atomic<uint64_t> arena_reuse_hits{0};
  std::atomic<uint64_t> view_delta_tuples{0};
  std::atomic<uint64_t> view_rederivations{0};
  std::atomic<uint64_t> view_full_recomputes{0};
  std::atomic<uint64_t> view_maintenance_ns{0};
  std::atomic<uint64_t> page_cache_hits{0};
  std::atomic<uint64_t> page_cache_misses{0};
  std::atomic<uint64_t> page_evictions{0};
  std::atomic<uint64_t> page_writeback_bytes{0};
  std::atomic<uint64_t> paged_runs_fetched{0};
  std::atomic<uint64_t> paged_spill_bytes{0};
  std::atomic<uint64_t> paged_materializations{0};
};

Counters& Global() {
  static Counters counters;
  return counters;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

thread_local bool tls_indexing_enabled = true;
thread_local bool tls_sharding_enabled = true;
thread_local bool tls_closure_fastpath = true;
thread_local bool tls_minimal_canonical = true;

std::string Millis(uint64_t ns) {
  return StrCat(ns / 1000000, ".", (ns / 100000) % 10, " ms");
}

}  // namespace

void EvalCounters::AddPairsConsidered(uint64_t n) {
  Global().pairs_considered.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPairsPruned(uint64_t n) {
  Global().pairs_pruned.fetch_add(n, kRelaxed);
}
void EvalCounters::AddCanonicalized(uint64_t n) {
  Global().canonicalized.fetch_add(n, kRelaxed);
}
void EvalCounters::AddSubsumptionChecks(uint64_t n) {
  Global().subsumption_checks.fetch_add(n, kRelaxed);
}
void EvalCounters::AddHashSkips(uint64_t n) {
  Global().hash_skips.fetch_add(n, kRelaxed);
}
void EvalCounters::AddIndexBuild(uint64_t ns) {
  Global().index_builds.fetch_add(1, kRelaxed);
  Global().index_build_ns.fetch_add(ns, kRelaxed);
}
void EvalCounters::AddIndexProbes(uint64_t n, uint64_t ns) {
  Global().index_probes.fetch_add(n, kRelaxed);
  Global().index_probe_ns.fetch_add(ns, kRelaxed);
}
void EvalCounters::AddShardPairs(uint64_t considered, uint64_t pruned) {
  Global().shard_pairs_considered.fetch_add(considered, kRelaxed);
  Global().shard_pairs_pruned.fetch_add(pruned, kRelaxed);
}
void EvalCounters::AddShardIndexBuilds(uint64_t n) {
  Global().shard_index_builds.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPlannerReorders(uint64_t n) {
  Global().planner_reorders.fetch_add(n, kRelaxed);
}
void EvalCounters::AddClosureMemoHits(uint64_t n) {
  Global().closure_memo_hits.fetch_add(n, kRelaxed);
}
void EvalCounters::AddGuardCheckpoints(uint64_t n) {
  Global().guard_checkpoints.fetch_add(n, kRelaxed);
}
void EvalCounters::AddGuardTrips(uint64_t n) {
  Global().guard_trips.fetch_add(n, kRelaxed);
}
void EvalCounters::AddStorageBytesWritten(uint64_t n) {
  Global().storage_bytes_written.fetch_add(n, kRelaxed);
}
void EvalCounters::AddStorageFsyncs(uint64_t n) {
  Global().storage_fsyncs.fetch_add(n, kRelaxed);
}
void EvalCounters::AddWalRecordsAppended(uint64_t n) {
  Global().wal_records_appended.fetch_add(n, kRelaxed);
}
void EvalCounters::AddWalRecordsReplayed(uint64_t n) {
  Global().wal_records_replayed.fetch_add(n, kRelaxed);
}
void EvalCounters::AddSnapshotsWritten(uint64_t n) {
  Global().snapshots_written.fetch_add(n, kRelaxed);
}
void EvalCounters::AddStorageRecoveryNs(uint64_t ns) {
  Global().storage_recovery_ns.fetch_add(ns, kRelaxed);
}
void EvalCounters::AddCanonicalForm(uint64_t atoms) {
  Counters& c = Global();
  c.canonical_forms.fetch_add(1, kRelaxed);
  c.canonical_atoms.fetch_add(atoms, kRelaxed);
  uint64_t seen = c.canonical_atoms_max.load(kRelaxed);
  while (seen < atoms &&
         !c.canonical_atoms_max.compare_exchange_weak(seen, atoms, kRelaxed)) {
  }
}
void EvalCounters::AddArenaBytes(uint64_t n) {
  Global().arena_bytes.fetch_add(n, kRelaxed);
}
void EvalCounters::AddArenaReuseHits(uint64_t n) {
  Global().arena_reuse_hits.fetch_add(n, kRelaxed);
}
void EvalCounters::AddViewDeltaTuples(uint64_t n) {
  Global().view_delta_tuples.fetch_add(n, kRelaxed);
}
void EvalCounters::AddViewRederivations(uint64_t n) {
  Global().view_rederivations.fetch_add(n, kRelaxed);
}
void EvalCounters::AddViewFullRecomputes(uint64_t n) {
  Global().view_full_recomputes.fetch_add(n, kRelaxed);
}
void EvalCounters::AddViewMaintenanceNs(uint64_t ns) {
  Global().view_maintenance_ns.fetch_add(ns, kRelaxed);
}
void EvalCounters::AddPageCacheHits(uint64_t n) {
  Global().page_cache_hits.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPageCacheMisses(uint64_t n) {
  Global().page_cache_misses.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPageEvictions(uint64_t n) {
  Global().page_evictions.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPageWritebackBytes(uint64_t n) {
  Global().page_writeback_bytes.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPagedRunsFetched(uint64_t n) {
  Global().paged_runs_fetched.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPagedSpillBytes(uint64_t n) {
  Global().paged_spill_bytes.fetch_add(n, kRelaxed);
}
void EvalCounters::AddPagedMaterializations(uint64_t n) {
  Global().paged_materializations.fetch_add(n, kRelaxed);
}

EvalCounterSnapshot EvalCounters::Snapshot() {
  const Counters& c = Global();
  EvalCounterSnapshot snap;
  snap.pairs_considered = c.pairs_considered.load(kRelaxed);
  snap.pairs_pruned = c.pairs_pruned.load(kRelaxed);
  snap.canonicalized = c.canonicalized.load(kRelaxed);
  snap.subsumption_checks = c.subsumption_checks.load(kRelaxed);
  snap.hash_skips = c.hash_skips.load(kRelaxed);
  snap.index_builds = c.index_builds.load(kRelaxed);
  snap.index_probes = c.index_probes.load(kRelaxed);
  snap.index_build_ns = c.index_build_ns.load(kRelaxed);
  snap.index_probe_ns = c.index_probe_ns.load(kRelaxed);
  snap.shard_pairs_considered = c.shard_pairs_considered.load(kRelaxed);
  snap.shard_pairs_pruned = c.shard_pairs_pruned.load(kRelaxed);
  snap.shard_index_builds = c.shard_index_builds.load(kRelaxed);
  snap.planner_reorders = c.planner_reorders.load(kRelaxed);
  snap.closure_memo_hits = c.closure_memo_hits.load(kRelaxed);
  snap.guard_checkpoints = c.guard_checkpoints.load(kRelaxed);
  snap.guard_trips = c.guard_trips.load(kRelaxed);
  snap.storage_bytes_written = c.storage_bytes_written.load(kRelaxed);
  snap.storage_fsyncs = c.storage_fsyncs.load(kRelaxed);
  snap.wal_records_appended = c.wal_records_appended.load(kRelaxed);
  snap.wal_records_replayed = c.wal_records_replayed.load(kRelaxed);
  snap.snapshots_written = c.snapshots_written.load(kRelaxed);
  snap.storage_recovery_ns = c.storage_recovery_ns.load(kRelaxed);
  snap.canonical_forms = c.canonical_forms.load(kRelaxed);
  snap.canonical_atoms = c.canonical_atoms.load(kRelaxed);
  snap.canonical_atoms_max = c.canonical_atoms_max.load(kRelaxed);
  snap.arena_bytes = c.arena_bytes.load(kRelaxed);
  snap.arena_reuse_hits = c.arena_reuse_hits.load(kRelaxed);
  snap.view_delta_tuples = c.view_delta_tuples.load(kRelaxed);
  snap.view_rederivations = c.view_rederivations.load(kRelaxed);
  snap.view_full_recomputes = c.view_full_recomputes.load(kRelaxed);
  snap.view_maintenance_ns = c.view_maintenance_ns.load(kRelaxed);
  snap.page_cache_hits = c.page_cache_hits.load(kRelaxed);
  snap.page_cache_misses = c.page_cache_misses.load(kRelaxed);
  snap.page_evictions = c.page_evictions.load(kRelaxed);
  snap.page_writeback_bytes = c.page_writeback_bytes.load(kRelaxed);
  snap.paged_runs_fetched = c.paged_runs_fetched.load(kRelaxed);
  snap.paged_spill_bytes = c.paged_spill_bytes.load(kRelaxed);
  snap.paged_materializations = c.paged_materializations.load(kRelaxed);
  return snap;
}

EvalCounterSnapshot EvalCounterSnapshot::operator-(
    const EvalCounterSnapshot& since) const {
  EvalCounterSnapshot delta;
  delta.pairs_considered = pairs_considered - since.pairs_considered;
  delta.pairs_pruned = pairs_pruned - since.pairs_pruned;
  delta.canonicalized = canonicalized - since.canonicalized;
  delta.subsumption_checks = subsumption_checks - since.subsumption_checks;
  delta.hash_skips = hash_skips - since.hash_skips;
  delta.index_builds = index_builds - since.index_builds;
  delta.index_probes = index_probes - since.index_probes;
  delta.index_build_ns = index_build_ns - since.index_build_ns;
  delta.index_probe_ns = index_probe_ns - since.index_probe_ns;
  delta.shard_pairs_considered =
      shard_pairs_considered - since.shard_pairs_considered;
  delta.shard_pairs_pruned = shard_pairs_pruned - since.shard_pairs_pruned;
  delta.shard_index_builds = shard_index_builds - since.shard_index_builds;
  delta.planner_reorders = planner_reorders - since.planner_reorders;
  delta.closure_memo_hits = closure_memo_hits - since.closure_memo_hits;
  delta.guard_checkpoints = guard_checkpoints - since.guard_checkpoints;
  delta.guard_trips = guard_trips - since.guard_trips;
  delta.storage_bytes_written =
      storage_bytes_written - since.storage_bytes_written;
  delta.storage_fsyncs = storage_fsyncs - since.storage_fsyncs;
  delta.wal_records_appended =
      wal_records_appended - since.wal_records_appended;
  delta.wal_records_replayed =
      wal_records_replayed - since.wal_records_replayed;
  delta.snapshots_written = snapshots_written - since.snapshots_written;
  delta.storage_recovery_ns = storage_recovery_ns - since.storage_recovery_ns;
  delta.canonical_forms = canonical_forms - since.canonical_forms;
  delta.canonical_atoms = canonical_atoms - since.canonical_atoms;
  // High-water mark, not a rate: the delta keeps the later reading.
  delta.canonical_atoms_max = canonical_atoms_max;
  delta.arena_bytes = arena_bytes - since.arena_bytes;
  delta.arena_reuse_hits = arena_reuse_hits - since.arena_reuse_hits;
  delta.view_delta_tuples = view_delta_tuples - since.view_delta_tuples;
  delta.view_rederivations = view_rederivations - since.view_rederivations;
  delta.view_full_recomputes =
      view_full_recomputes - since.view_full_recomputes;
  delta.view_maintenance_ns = view_maintenance_ns - since.view_maintenance_ns;
  delta.page_cache_hits = page_cache_hits - since.page_cache_hits;
  delta.page_cache_misses = page_cache_misses - since.page_cache_misses;
  delta.page_evictions = page_evictions - since.page_evictions;
  delta.page_writeback_bytes =
      page_writeback_bytes - since.page_writeback_bytes;
  delta.paged_runs_fetched = paged_runs_fetched - since.paged_runs_fetched;
  delta.paged_spill_bytes = paged_spill_bytes - since.paged_spill_bytes;
  delta.paged_materializations =
      paged_materializations - since.paged_materializations;
  return delta;
}

std::string EvalCounterSnapshot::ToString() const {
  uint64_t pct =
      pairs_considered == 0 ? 0 : 100 * pairs_pruned / pairs_considered;
  uint64_t shard_pct = shard_pairs_considered == 0
                           ? 0
                           : 100 * shard_pairs_pruned / shard_pairs_considered;
  uint64_t avg_tenths_total =
      canonical_forms == 0 ? 0 : 10 * canonical_atoms / canonical_forms;
  uint64_t avg_whole = avg_tenths_total / 10;
  uint64_t avg_tenths = avg_tenths_total % 10;
  return StrCat(
      "  candidate pairs considered   ", pairs_considered, "\n",
      "  pruned by bound signatures   ", pairs_pruned, " (", pct, "%)\n",
      "  tuples canonicalized         ", canonicalized, "\n",
      "  subsumption checks           ", subsumption_checks, "\n",
      "  duplicate searches skipped   ", hash_skips, "\n",
      "  index builds / probes        ", index_builds, " / ", index_probes,
      "\n",
      "  index build / probe time     ", Millis(index_build_ns), " / ",
      Millis(index_probe_ns), "\n",
      "  shard pairs considered       ", shard_pairs_considered, "\n",
      "  pruned by shard covers       ", shard_pairs_pruned, " (", shard_pct,
      "%)\n",
      "  per-shard index builds       ", shard_index_builds, "\n",
      "  planner reorders             ", planner_reorders, "\n",
      "  closure memo hits            ", closure_memo_hits, "\n",
      "  guard checkpoints / trips    ", guard_checkpoints, " / ", guard_trips,
      "\n",
      "  storage bytes written        ", storage_bytes_written, "\n",
      "  storage fsyncs               ", storage_fsyncs, "\n",
      "  wal records appended         ", wal_records_appended, "\n",
      "  wal records replayed         ", wal_records_replayed, "\n",
      "  snapshots written            ", snapshots_written, "\n",
      "  storage recovery time        ", Millis(storage_recovery_ns), "\n",
      "  atoms per canonical tuple    ", avg_whole, ".", avg_tenths,
      " avg / ", canonical_atoms_max, " max\n",
      "  arena bytes / span reuses    ", arena_bytes, " / ", arena_reuse_hits,
      "\n",
      "  view delta tuples            ", view_delta_tuples, "\n",
      "  view rederivations           ", view_rederivations, "\n",
      "  view full recomputes         ", view_full_recomputes, "\n",
      "  view maintenance time        ", Millis(view_maintenance_ns), "\n",
      "  page cache hits / misses     ", page_cache_hits, " / ",
      page_cache_misses, "\n",
      "  page evictions               ", page_evictions, "\n",
      "  page writeback bytes         ", page_writeback_bytes, "\n",
      "  paged runs fetched           ", paged_runs_fetched, "\n",
      "  paged spill bytes            ", paged_spill_bytes, "\n",
      "  paged materializations       ", paged_materializations, "\n");
}

bool IndexingEnabled() { return tls_indexing_enabled; }

IndexModeScope::IndexModeScope(bool enabled) : prev_(tls_indexing_enabled) {
  tls_indexing_enabled = enabled;
}

IndexModeScope::~IndexModeScope() { tls_indexing_enabled = prev_; }

bool ShardingEnabled() { return tls_sharding_enabled; }

ShardModeScope::ShardModeScope(bool enabled) : prev_(tls_sharding_enabled) {
  tls_sharding_enabled = enabled;
}

ShardModeScope::~ShardModeScope() { tls_sharding_enabled = prev_; }

bool ClosureFastPathEnabled() { return tls_closure_fastpath; }

ClosureFastPathScope::ClosureFastPathScope(bool enabled)
    : prev_(tls_closure_fastpath) {
  tls_closure_fastpath = enabled;
}

ClosureFastPathScope::~ClosureFastPathScope() { tls_closure_fastpath = prev_; }

bool MinimalCanonicalEnabled() { return tls_minimal_canonical; }

MinimalCanonicalScope::MinimalCanonicalScope(bool enabled)
    : prev_(tls_minimal_canonical) {
  tls_minimal_canonical = enabled;
}

MinimalCanonicalScope::~MinimalCanonicalScope() {
  tls_minimal_canonical = prev_;
}

}  // namespace dodb
