#include "constraints/generalized_relation.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "constraints/closure_cache.h"
#include "constraints/eval_counters.h"
#include "core/check.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "core/thread_pool.h"

namespace dodb {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

GeneralizedRelation::GeneralizedRelation(int arity) : arity_(arity) {
  DODB_CHECK(arity >= 0);
}

const std::vector<GeneralizedTuple>& GeneralizedRelation::tuples() const {
  static const std::vector<GeneralizedTuple> kEmpty;
  if (paged_ && !tuples_) MaterializeIfPaged();
  return tuples_ ? *tuples_ : kEmpty;
}

void GeneralizedRelation::MaterializeIfPaged() const {
  if (!paged_ || tuples_) return;
  // The PagedState is shared by every copy of the spilled relation; the
  // first copy touched decodes, the rest adopt its vector.
  std::lock_guard<std::mutex> lock(paged_->mu);
  if (paged_->materialized) {
    tuples_ = paged_->materialized;
    return;
  }
  const PagedTupleSource& source = *paged_->source;
  auto decoded = std::make_shared<std::vector<GeneralizedTuple>>();
  decoded->reserve(source.tuple_count());
  Status status = Status::Ok();
  std::vector<GeneralizedTuple> run;
  for (size_t r = 0; r < source.run_count() && status.ok(); ++r) {
    status = source.FetchRun(r, &run);
    if (status.ok()) {
      for (GeneralizedTuple& t : run) decoded->push_back(std::move(t));
    }
  }
  if (!status.ok()) {
    // tuples() cannot surface a Status; route the failure through the
    // cooperative-cancellation channel so the enclosing query aborts with
    // it (a fault-armed fetch has usually tripped the guard already).
    QueryGuard* guard = CurrentQueryGuard();
    DODB_CHECK_MSG(guard != nullptr, status.message().c_str());
    if (!guard->tripped()) {
      guard->Trip(GuardSite::kPageEvict, std::move(status));
    }
    return;  // tuples() yields kEmpty; the guard Status is what surfaces
  }
  DODB_CHECK_MSG(decoded->size() == source.tuple_count(),
                 "paged source returned the wrong tuple count");
  EvalCounters::AddPagedMaterializations(1);
  paged_->materialized = decoded;
  tuples_ = std::move(decoded);
}

std::vector<GeneralizedTuple>& GeneralizedRelation::MutableTuples() {
  if (paged_) {
    // Mutation would desynchronize the spilled image; residentize first.
    MaterializeIfPaged();
    paged_.reset();
  }
  if (!tuples_) {
    tuples_ = std::make_shared<std::vector<GeneralizedTuple>>();
  } else if (tuples_.use_count() > 1) {
    tuples_ = std::make_shared<std::vector<GeneralizedTuple>>(*tuples_);
  }
  return *tuples_;
}

GeneralizedRelation GeneralizedRelation::True(int arity) {
  GeneralizedRelation rel(arity);
  rel.AddTuple(GeneralizedTuple(arity));
  return rel;
}

GeneralizedRelation GeneralizedRelation::False(int arity) {
  return GeneralizedRelation(arity);
}

GeneralizedRelation GeneralizedRelation::FromPoints(
    int arity, const std::vector<std::vector<Rational>>& points) {
  GeneralizedRelation rel(arity);
  for (const std::vector<Rational>& point : points) {
    DODB_CHECK(static_cast<int>(point.size()) == arity);
    rel.AddTuple(GeneralizedTuple::Point(point));
  }
  return rel;
}

GeneralizedRelation GeneralizedRelation::FromCanonicalTuples(
    int arity, std::vector<GeneralizedTuple> tuples) {
  GeneralizedRelation rel(arity);
  if (!tuples.empty()) {
    // Loaded tuples arrive heap-backed from the decoder; pack them into one
    // arena so a freshly loaded database scans as flat as a computed one.
    for (GeneralizedTuple& tuple : tuples) rel.PlaceInArena(tuple);
    rel.tuples_ =
        std::make_shared<std::vector<GeneralizedTuple>>(std::move(tuples));
  }
  return rel;
}

GeneralizedRelation GeneralizedRelation::FromPagedSource(
    std::shared_ptr<const PagedTupleSource> source,
    std::shared_ptr<RelationIndex> index) {
  DODB_CHECK_MSG(source != nullptr, "FromPagedSource with a null source");
  GeneralizedRelation rel(source->arity());
  rel.index_ = std::move(index);
  rel.paged_ = std::make_shared<PagedState>();
  rel.paged_->runs = std::make_shared<PagedRunCache>(source);
  rel.paged_->source = std::move(source);
  return rel;
}

std::shared_ptr<RelationIndex> GeneralizedRelation::SharedIndex() const {
  Index();  // build if absent
  return index_;
}

void GeneralizedRelation::PlaceInArena(GeneralizedTuple& tuple) {
  if (tuple.atoms().is_arena_backed()) {
    EvalCounters::AddArenaReuseHits(1);
    return;
  }
  if (!tuple.atoms().is_heap_backed()) return;  // inline: nothing to place
  if (!arena_) arena_ = std::make_shared<AtomArena>();
  uint64_t added = tuple.PlaceAtomsIn(arena_);
  if (added != 0) EvalCounters::AddArenaBytes(added);
}

size_t GeneralizedRelation::atom_count() const {
  size_t count = 0;
  for (const GeneralizedTuple& tuple : tuples()) count += tuple.atoms().size();
  return count;
}

void GeneralizedRelation::AddTuple(GeneralizedTuple tuple) {
  DODB_CHECK_MSG(tuple.arity() == arity_, "AddTuple arity mismatch");
  EvalCounters::AddCanonicalized(1);
  // Canonicalization is a pure function of the atom list, so serving it
  // from the installed memo (when one is in scope) is bit-identical to
  // recomputing.
  if (ClosureCache* memo = CurrentClosureCache()) {
    std::optional<GeneralizedTuple> canonical =
        memo->CanonicalIfSatisfiable(std::move(tuple));
    if (canonical.has_value()) AddCanonicalTuple(std::move(*canonical));
    return;
  }
  if (!tuple.IsSatisfiable()) return;
  AddCanonicalTuple(tuple.Canonical());
}

const RelationIndex& GeneralizedRelation::Index() const {
  if (!index_) {
    auto start = std::chrono::steady_clock::now();
    index_ = std::make_shared<RelationIndex>(RelationIndex::Build(tuples()));
    EvalCounters::AddIndexBuild(ElapsedNs(start));
  }
  return *index_;
}

RelationIndex* GeneralizedRelation::MutableIndex() {
  if (index_ && index_.use_count() == 1) return index_.get();
  auto start = std::chrono::steady_clock::now();
  if (index_) {
    // Unshare a snapshot another copy of the relation still holds.
    index_ = std::make_shared<RelationIndex>(*index_);
  } else {
    index_ = std::make_shared<RelationIndex>(RelationIndex::Build(tuples()));
  }
  EvalCounters::AddIndexBuild(ElapsedNs(start));
  return index_.get();
}

void GeneralizedRelation::AddCanonicalTuple(GeneralizedTuple canonical) {
  (void)AddCanonicalTupleCaptured(std::move(canonical), nullptr);
}

bool GeneralizedRelation::AddCanonicalTupleCaptured(
    GeneralizedTuple canonical, std::vector<GeneralizedTuple>* captured) {
  DODB_CHECK_MSG(canonical.arity() == arity_, "AddTuple arity mismatch");
  if (!IndexingEnabled()) {
    return AddCanonicalTupleLegacy(std::move(canonical), captured);
  }
  RelationIndex* index = MutableIndex();
  const TupleSignature& signature = canonical.CachedSignature();
  const std::vector<GeneralizedTuple>& stored = tuples();
  // Exact duplicates are by far the common case in fixpoint loops. The hash
  // multiset rejects most non-duplicates in O(1); only a hash hit pays for
  // the binary-search confirmation against the sorted tuple vector. The
  // duplicate and subsumed cases return before MutableTuples(), so they
  // never detach a shared (copy-on-write) vector.
  size_t insert_at = stored.size();
  bool pos_valid = false;
  if (index->MayContainHash(signature.hash)) {
    auto pos = std::lower_bound(stored.begin(), stored.end(), canonical);
    insert_at = static_cast<size_t>(pos - stored.begin());
    pos_valid = true;
    if (pos != stored.end() && pos->Compare(canonical) == 0) return false;
  } else {
    EvalCounters::AddHashSkips(1);
  }
  // Subsumption in either direction needs the bounding boxes to share a
  // point, so the entailment scans can be restricted to the tuples whose
  // signature overlaps the candidate's.
  std::vector<size_t> overlap;
  auto probe_start = std::chrono::steady_clock::now();
  index->AppendOverlapCandidates(signature, &overlap);
  EvalCounters::AddIndexProbes(1, ElapsedNs(probe_start));
  size_t checks = 0;
  bool subsumed = false;
  for (size_t p : overlap) {
    ++checks;
    if (canonical.EntailsTuple(stored[p])) {
      subsumed = true;
      break;
    }
  }
  if (subsumed) {
    EvalCounters::AddSubsumptionChecks(checks);
    return false;
  }
  std::vector<GeneralizedTuple>& tuples = MutableTuples();
  bool erased = false;
  for (size_t i = overlap.size(); i-- > 0;) {
    size_t p = overlap[i];
    ++checks;
    if (tuples[p].EntailsTuple(canonical)) {
      if (captured != nullptr) captured->push_back(tuples[p]);
      tuples.erase(tuples.begin() + p);
      index->EraseAt(p);
      erased = true;
    }
  }
  EvalCounters::AddSubsumptionChecks(checks);
  if (erased || !pos_valid) {
    insert_at = static_cast<size_t>(
        std::lower_bound(tuples.begin(), tuples.end(), canonical) -
        tuples.begin());
  }
  index->InsertAt(insert_at, signature);
  PlaceInArena(canonical);
  tuples.insert(tuples.begin() + insert_at, std::move(canonical));
  return true;
}

bool GeneralizedRelation::EraseCanonicalTuple(
    const GeneralizedTuple& canonical) {
  const std::vector<GeneralizedTuple>& stored = tuples();
  auto pos = std::lower_bound(stored.begin(), stored.end(), canonical);
  if (pos == stored.end() || pos->Compare(canonical) != 0) return false;
  size_t at = static_cast<size_t>(pos - stored.begin());
  if (!IndexingEnabled()) {
    // A legacy-mode mutation would leave a stale index behind; drop it and
    // let the next indexed use rebuild lazily (same rule as legacy inserts).
    index_.reset();
  } else {
    MutableIndex()->EraseAt(at);
  }
  std::vector<GeneralizedTuple>& tuples = MutableTuples();
  tuples.erase(tuples.begin() + at);
  return true;
}

bool GeneralizedRelation::AddCanonicalTupleLegacy(
    GeneralizedTuple canonical, std::vector<GeneralizedTuple>* captured) {
  // A legacy-mode mutation would leave a stale index behind; drop it and let
  // the next indexed use rebuild lazily.
  index_.reset();
  const std::vector<GeneralizedTuple>& stored = tuples();
  // Exact duplicates are by far the common case in fixpoint loops: reject
  // them with a binary search before the linear subsumption scan. Duplicate
  // and subsumed candidates return before MutableTuples(), so they never
  // detach a shared (copy-on-write) vector.
  auto dup = std::lower_bound(stored.begin(), stored.end(), canonical);
  size_t insert_at = static_cast<size_t>(dup - stored.begin());
  if (dup != stored.end() && dup->Compare(canonical) == 0) return false;
  // Subsumption pruning: skip if an existing tuple covers it; drop existing
  // tuples it covers.
  size_t checks = 0;
  for (const GeneralizedTuple& existing : stored) {
    ++checks;
    if (canonical.EntailsTuple(existing)) {
      EvalCounters::AddSubsumptionChecks(checks);
      return false;
    }
  }
  std::vector<GeneralizedTuple>& tuples = MutableTuples();
  size_t size_before = tuples.size();
  std::erase_if(tuples, [&](const GeneralizedTuple& existing) {
    ++checks;
    bool erase = existing.EntailsTuple(canonical);
    if (erase && captured != nullptr) captured->push_back(existing);
    return erase;
  });
  EvalCounters::AddSubsumptionChecks(checks);
  if (tuples.size() != size_before) {
    // Only re-search when the erase actually shifted elements; otherwise the
    // first search position is still exact.
    insert_at = static_cast<size_t>(
        std::lower_bound(tuples.begin(), tuples.end(), canonical) -
        tuples.begin());
  }
  PlaceInArena(canonical);
  tuples.insert(tuples.begin() + insert_at, std::move(canonical));
  return true;
}

void GeneralizedRelation::AddTuplesParallel(
    size_t n, const std::function<GeneralizedTuple(size_t)>& make) {
  // Every operator that materializes candidates funnels through here, so
  // this is the guard's main in-operator coverage: the upfront checkpoint
  // accounts the whole candidate count against the work budget before any
  // canonicalization starts (a pathological cross product trips instantly),
  // the strided per-candidate checkpoints catch deadline blowups mid-phase,
  // and the merge loop enforces the byte and relation-size budgets as
  // tuples land. With no guard installed every added branch is one null
  // test; an untripped guard changes no outputs.
  QueryGuard* guard = CurrentQueryGuard();
  constexpr GuardSite kSite = GuardSite::kAlgebraMaterialize;
  if (guard != nullptr && !guard->Checkpoint(kSite, n)) return;
  if (!ShouldParallelize(n)) {
    // Bytes batch at the checkpoint stride: per-tuple accounting would put
    // an atomic (and formerly a clock read) on every insertion for a
    // budget that is approximate anyway.
    uint64_t pending_bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      if (guard == nullptr) {
        AddTuple(make(i));
        continue;
      }
      if ((i & 63) == 63) {
        guard->AccountBytes(kSite, pending_bytes);
        pending_bytes = 0;
        if (!guard->Checkpoint(kSite)) return;
      }
      GeneralizedTuple candidate = make(i);
      pending_bytes += candidate.ApproxBytes();
      AddTuple(std::move(candidate));
      if (!guard->CheckRelationSize(kSite, tuple_count())) return;
    }
    if (guard != nullptr) guard->AccountBytes(kSite, pending_bytes);
    return;
  }
  // Parallel phase: satisfiability + canonicalization per candidate, each a
  // pure function of its index. Sequential phase: the same insertions, in
  // the same order, as the inline loop above. The memo pointer, the
  // closure-sweep and canonical-form modes and the guard are read on the
  // calling thread and captured by value — worker threads don't inherit the
  // thread-local scopes. The first worker to trip flips the shared flag; siblings see it
  // at their next strided checkpoint and bail without doing more closure
  // work (their slots stay empty, which is fine: a tripped run never
  // surfaces the merged relation, only the guard's Status).
  EvalCounters::AddCanonicalized(n);
  ClosureCache* memo = CurrentClosureCache();
  const bool closure_fast = ClosureFastPathEnabled();
  const bool minimal = MinimalCanonicalEnabled();
  std::vector<std::optional<GeneralizedTuple>> prepared =
      ParallelMap<std::optional<GeneralizedTuple>>(
          n, [&make, memo, closure_fast, minimal, guard](size_t i) {
            ClosureFastPathScope sweep(closure_fast);
            MinimalCanonicalScope canonical_mode(minimal);
            QueryGuardScope guard_scope(guard);
            if (guard != nullptr) {
              if ((i & 63) == 63 && !guard->Checkpoint(kSite)) {
                return std::optional<GeneralizedTuple>();
              }
              if (guard->tripped()) return std::optional<GeneralizedTuple>();
            }
            GeneralizedTuple candidate = make(i);
            if (memo != nullptr) {
              return memo->CanonicalIfSatisfiable(std::move(candidate));
            }
            return candidate.CanonicalIfSatisfiable();
          });
  uint64_t merged = 0;
  uint64_t pending_bytes = 0;  // batched like the inline loop above
  for (std::optional<GeneralizedTuple>& candidate : prepared) {
    if (!candidate.has_value()) continue;
    if (guard == nullptr) {
      AddCanonicalTuple(std::move(*candidate));
      continue;
    }
    if ((merged++ & 63) == 63) {
      guard->AccountBytes(kSite, pending_bytes);
      pending_bytes = 0;
      if (!guard->Checkpoint(kSite)) return;
    }
    pending_bytes += candidate->ApproxBytes();
    AddCanonicalTuple(std::move(*candidate));
    if (!guard->CheckRelationSize(kSite, tuple_count())) return;
  }
  if (guard != nullptr) guard->AccountBytes(kSite, pending_bytes);
}

bool GeneralizedRelation::Contains(const std::vector<Rational>& point) const {
  for (const GeneralizedTuple& tuple : tuples()) {
    if (tuple.Contains(point)) return true;
  }
  return false;
}

std::vector<Rational> GeneralizedRelation::Constants() const {
  std::set<Rational> seen;
  for (const GeneralizedTuple& tuple : tuples()) {
    for (const Rational& c : tuple.Constants()) seen.insert(c);
  }
  return std::vector<Rational>(seen.begin(), seen.end());
}

bool GeneralizedRelation::StructurallyEquals(
    const GeneralizedRelation& other) const {
  if (arity_ != other.arity_) return false;
  // Copies share their vector until a mutation detaches it, so identical
  // storage proves structural equality without a scan.
  if (tuples_ == other.tuples_) return true;
  const std::vector<GeneralizedTuple>& a = tuples();
  const std::vector<GeneralizedTuple>& b = other.tuples();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

std::string GeneralizedRelation::ToString(
    const std::vector<std::string>* names) const {
  if (IsEmpty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(tuple_count());
  for (const GeneralizedTuple& tuple : tuples()) {
    // Stored tuples are closure-canonical (quadratic in atoms); print the
    // minimized equivalent — ToString is for humans.
    parts.push_back(tuple.Minimized().ToString(names));
  }
  return StrCat("{ ", StrJoin(parts, " ; "), " }");
}

}  // namespace dodb
