#include "constraints/generalized_relation.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/str_util.h"
#include "core/thread_pool.h"

namespace dodb {

GeneralizedRelation::GeneralizedRelation(int arity) : arity_(arity) {
  DODB_CHECK(arity >= 0);
}

GeneralizedRelation GeneralizedRelation::True(int arity) {
  GeneralizedRelation rel(arity);
  rel.AddTuple(GeneralizedTuple(arity));
  return rel;
}

GeneralizedRelation GeneralizedRelation::False(int arity) {
  return GeneralizedRelation(arity);
}

GeneralizedRelation GeneralizedRelation::FromPoints(
    int arity, const std::vector<std::vector<Rational>>& points) {
  GeneralizedRelation rel(arity);
  for (const std::vector<Rational>& point : points) {
    DODB_CHECK(static_cast<int>(point.size()) == arity);
    rel.AddTuple(GeneralizedTuple::Point(point));
  }
  return rel;
}

size_t GeneralizedRelation::atom_count() const {
  size_t count = 0;
  for (const GeneralizedTuple& tuple : tuples_) count += tuple.atoms().size();
  return count;
}

void GeneralizedRelation::AddTuple(GeneralizedTuple tuple) {
  DODB_CHECK_MSG(tuple.arity() == arity_, "AddTuple arity mismatch");
  if (!tuple.IsSatisfiable()) return;
  AddCanonicalTuple(tuple.Canonical());
}

void GeneralizedRelation::AddCanonicalTuple(GeneralizedTuple canonical) {
  DODB_CHECK_MSG(canonical.arity() == arity_, "AddTuple arity mismatch");
  // Exact duplicates are by far the common case in fixpoint loops: reject
  // them with a binary search before the linear subsumption scan.
  auto pos = std::lower_bound(tuples_.begin(), tuples_.end(), canonical);
  if (pos != tuples_.end() && pos->Compare(canonical) == 0) return;
  // Subsumption pruning: skip if an existing tuple covers it; drop existing
  // tuples it covers.
  for (const GeneralizedTuple& existing : tuples_) {
    if (canonical.EntailsTuple(existing)) return;
  }
  std::erase_if(tuples_, [&](const GeneralizedTuple& existing) {
    return existing.EntailsTuple(canonical);
  });
  pos = std::lower_bound(tuples_.begin(), tuples_.end(), canonical);
  tuples_.insert(pos, std::move(canonical));
}

void GeneralizedRelation::AddTuplesParallel(
    size_t n, const std::function<GeneralizedTuple(size_t)>& make) {
  if (!ShouldParallelize(n)) {
    for (size_t i = 0; i < n; ++i) AddTuple(make(i));
    return;
  }
  // Parallel phase: satisfiability + canonicalization per candidate, each a
  // pure function of its index. Sequential phase: the same insertions, in
  // the same order, as the inline loop above.
  std::vector<std::optional<GeneralizedTuple>> prepared =
      ParallelMap<std::optional<GeneralizedTuple>>(n, [&make](size_t i) {
        return make(i).CanonicalIfSatisfiable();
      });
  for (std::optional<GeneralizedTuple>& candidate : prepared) {
    if (candidate.has_value()) AddCanonicalTuple(std::move(*candidate));
  }
}

bool GeneralizedRelation::Contains(const std::vector<Rational>& point) const {
  for (const GeneralizedTuple& tuple : tuples_) {
    if (tuple.Contains(point)) return true;
  }
  return false;
}

std::vector<Rational> GeneralizedRelation::Constants() const {
  std::set<Rational> seen;
  for (const GeneralizedTuple& tuple : tuples_) {
    for (const Rational& c : tuple.Constants()) seen.insert(c);
  }
  return std::vector<Rational>(seen.begin(), seen.end());
}

bool GeneralizedRelation::StructurallyEquals(
    const GeneralizedRelation& other) const {
  if (arity_ != other.arity_ || tuples_.size() != other.tuples_.size()) {
    return false;
  }
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].Compare(other.tuples_[i]) != 0) return false;
  }
  return true;
}

std::string GeneralizedRelation::ToString(
    const std::vector<std::string>* names) const {
  if (tuples_.empty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(tuples_.size());
  for (const GeneralizedTuple& tuple : tuples_) {
    // Stored tuples are closure-canonical (quadratic in atoms); print the
    // minimized equivalent — ToString is for humans.
    parts.push_back(tuple.Minimized().ToString(names));
  }
  return StrCat("{ ", StrJoin(parts, " ; "), " }");
}

}  // namespace dodb
