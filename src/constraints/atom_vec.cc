#include "constraints/atom_vec.h"

#include <algorithm>
#include <cstring>

namespace dodb {

AtomArena::~AtomArena() {
  for (DenseAtom* chunk : chunks_) delete[] chunk;
}

const DenseAtom* AtomArena::Place(const DenseAtom* atoms, size_t n) {
  if (last_capacity_ - last_used_ < n) {
    const size_t capacity = std::max(kMinChunkAtoms, n);
    chunks_.push_back(new DenseAtom[capacity]);
    last_capacity_ = capacity;
    last_used_ = 0;
    bytes_ += capacity * sizeof(DenseAtom);
  }
  DenseAtom* dst = chunks_.back() + last_used_;
  std::memcpy(dst, atoms, n * sizeof(DenseAtom));
  last_used_ += n;
  return dst;
}

AtomVec::AtomVec(std::vector<DenseAtom> atoms) {
  size_ = static_cast<uint32_t>(atoms.size());
  if (atoms.size() <= kInlineAtoms) {
    std::memcpy(inline_, atoms.data(), atoms.size() * sizeof(DenseAtom));
    return;
  }
  rep_ = Rep::kHeap;
  heap_ = std::move(atoms);
}

void AtomVec::DetachSpan() {
  if (size_ <= kInlineAtoms) {
    std::memcpy(inline_, span_, size_ * sizeof(DenseAtom));
    rep_ = Rep::kInline;
  } else {
    heap_.assign(span_, span_ + size_);
    rep_ = Rep::kHeap;
  }
  span_ = nullptr;
  keepalive_.reset();
}

void AtomVec::push_back(const DenseAtom& atom) {
  if (rep_ == Rep::kSpan) DetachSpan();
  if (rep_ == Rep::kInline) {
    if (size_ < kInlineAtoms) {
      inline_[size_++] = atom;
      return;
    }
    heap_.reserve(kInlineAtoms * 2);
    heap_.assign(inline_, inline_ + size_);
    rep_ = Rep::kHeap;
  }
  heap_.push_back(atom);
  ++size_;
}

void AtomVec::clear() {
  rep_ = Rep::kInline;
  size_ = 0;
  heap_.clear();
  heap_.shrink_to_fit();
  span_ = nullptr;
  keepalive_.reset();
}

uint64_t AtomVec::PlaceIn(const std::shared_ptr<AtomArena>& arena) {
  if (rep_ != Rep::kHeap) return 0;
  const uint64_t before = arena->bytes();
  span_ = arena->Place(heap_.data(), size_);
  keepalive_ = arena;
  rep_ = Rep::kSpan;
  heap_.clear();
  heap_.shrink_to_fit();
  return arena->bytes() - before;
}

}  // namespace dodb
