#ifndef DODB_CONSTRAINTS_TERM_H_
#define DODB_CONSTRAINTS_TERM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/rational.h"

namespace dodb {

/// A term of the dense-order language L = {=, <=} ∪ Q: either a variable
/// (identified by its column index within a tuple context) or a rational
/// constant.
class Term {
 public:
  /// Constructs the variable with column index `index` (>= 0).
  static Term Var(int index);
  /// Constructs a constant term.
  static Term Const(Rational value);

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  /// Column index; requires is_var().
  int var() const;
  /// Constant value; requires is_const().
  const Rational& constant() const;

  /// Structural ordering: variables (by index) before constants (by value).
  /// Inline: term comparison is the innermost step of every atom sort,
  /// tuple ordering, and subsumption scan.
  int Compare(const Term& other) const {
    if (is_var_ != other.is_var_) return is_var_ ? -1 : 1;
    if (is_var_) {
      if (index_ != other.index_) return index_ < other.index_ ? -1 : 1;
      return 0;
    }
    return value_.Compare(other.value_);
  }
  bool operator==(const Term& other) const { return Compare(other) == 0; }
  bool operator!=(const Term& other) const { return Compare(other) != 0; }
  bool operator<(const Term& other) const { return Compare(other) < 0; }

  /// Renders a variable as names[index] when provided, else "x<index>".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  size_t Hash() const;

 private:
  Term(bool is_var, int index, Rational value)
      : is_var_(is_var), index_(index), value_(std::move(value)) {}

  bool is_var_;
  int index_;
  Rational value_;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_TERM_H_
