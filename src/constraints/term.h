#ifndef DODB_CONSTRAINTS_TERM_H_
#define DODB_CONSTRAINTS_TERM_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "constraints/const_pool.h"
#include "core/rational.h"

namespace dodb {

/// A term of the dense-order language L = {=, <=} ∪ Q: either a variable
/// (identified by its column index within a tuple context) or a rational
/// constant.
///
/// Terms are 8-byte trivially copyable handles: a variable stores its column
/// index, a constant stores its ConstPool slot. Interning is canonical
/// (equal values share one slot), so equality of constant terms is a slot
/// compare and copying a term — the innermost operation of atom sorts, the
/// PC-1 sweep's node table and every tuple materialization — never touches
/// the allocator. constant() reads the pooled value, whose address is stable
/// for the process lifetime.
class Term {
 public:
  /// The variable x0 (arrays of terms need a default; never observed).
  Term() : index_(0), slot_(0) {}

  /// Constructs the variable with column index `index` (>= 0).
  static Term Var(int index);
  /// Constructs a constant term (interned).
  static Term Const(const Rational& value);

  bool is_var() const { return index_ >= 0; }
  bool is_const() const { return index_ < 0; }

  /// Column index; requires is_var().
  int var() const;
  /// Constant value; requires is_const(). Stable reference into the pool.
  const Rational& constant() const;

  /// The pool slot of a constant term; requires is_const().
  uint32_t const_slot() const;

  /// Structural ordering: variables (by index) before constants (by value).
  /// Inline: term comparison is the innermost step of every atom sort,
  /// tuple ordering, and subsumption scan. Equal slots short-circuit the
  /// rational compare — interning makes that the common constant case.
  int Compare(const Term& other) const {
    const bool var_a = index_ >= 0;
    const bool var_b = other.index_ >= 0;
    if (var_a != var_b) return var_a ? -1 : 1;  // variables before constants
    if (var_a) {
      if (index_ != other.index_) return index_ < other.index_ ? -1 : 1;
      return 0;
    }
    if (slot_ == other.slot_) return 0;
    return ConstPool::Value(slot_).Compare(ConstPool::Value(other.slot_));
  }
  bool operator==(const Term& other) const { return Compare(other) == 0; }
  bool operator!=(const Term& other) const { return Compare(other) != 0; }
  bool operator<(const Term& other) const { return Compare(other) < 0; }

  /// Renders a variable as names[index] when provided, else "x<index>".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  size_t Hash() const;

 private:
  Term(int32_t index, uint32_t slot) : index_(index), slot_(slot) {}

  // >= 0: variable index. < 0: constant, value at ConstPool slot slot_.
  int32_t index_;
  uint32_t slot_;
};

static_assert(sizeof(Term) == 8, "Term is a two-word POD handle");

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_TERM_H_
