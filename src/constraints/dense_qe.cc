#include "constraints/dense_qe.h"

#include <optional>
#include <utility>

#include "constraints/eval_counters.h"
#include "core/check.h"
#include "core/query_guard.h"
#include "core/thread_pool.h"

namespace dodb {

namespace {

bool TermIsVar(const Term& term, int var) {
  return term.is_var() && term.var() == var;
}

Term SubstituteTerm(const Term& term, int var, const Term& replacement) {
  if (TermIsVar(term, var)) return replacement;
  return term;
}

// Substitutes `replacement` for x_var throughout `tuple`.
GeneralizedTuple Substitute(const GeneralizedTuple& tuple, int var,
                            const Term& replacement) {
  GeneralizedTuple out(tuple.arity());
  for (const DenseAtom& atom : tuple.atoms()) {
    Term lhs = SubstituteTerm(atom.lhs(), var, replacement);
    Term rhs = SubstituteTerm(atom.rhs(), var, replacement);
    out.AddAtom(DenseAtom(std::move(lhs), atom.op(), std::move(rhs)));
  }
  return out;
}

struct Bounds {
  std::vector<Term> lower_strict;     // t < x
  std::vector<Term> lower_nonstrict;  // t <= x
  std::vector<Term> upper_strict;     // x < t
  std::vector<Term> upper_nonstrict;  // x <= t
  std::vector<Term> forbidden;        // x != t
  std::vector<DenseAtom> others;      // atoms not involving x
};

// Classifies atoms relative to x_var. Requires that the tuple is satisfiable
// and x_var is not forced equal to any term (callers handle the equality
// case by substitution), so no kEq atom on x remains after closure handling;
// still, an explicit x = t atom is routed to the substitution path by
// EliminateVariable before this function runs.
Bounds ClassifyAtoms(const GeneralizedTuple& tuple, int var) {
  Bounds bounds;
  for (const DenseAtom& atom : tuple.atoms()) {
    bool lhs_is_x = TermIsVar(atom.lhs(), var);
    bool rhs_is_x = TermIsVar(atom.rhs(), var);
    if (!lhs_is_x && !rhs_is_x) {
      bounds.others.push_back(atom);
      continue;
    }
    if (lhs_is_x && rhs_is_x) {
      // x op x: trivially true here (unsatisfiable combinations were
      // filtered by the caller's satisfiability check).
      continue;
    }
    // Orient as: x op t.
    Term t = lhs_is_x ? atom.rhs() : atom.lhs();
    RelOp op = lhs_is_x ? atom.op() : FlipOp(atom.op());
    switch (op) {
      case RelOp::kLt:
        bounds.upper_strict.push_back(t);
        break;
      case RelOp::kLe:
        bounds.upper_nonstrict.push_back(t);
        break;
      case RelOp::kGt:
        bounds.lower_strict.push_back(t);
        break;
      case RelOp::kGe:
        bounds.lower_nonstrict.push_back(t);
        break;
      case RelOp::kNeq:
        bounds.forbidden.push_back(t);
        break;
      case RelOp::kEq:
        DODB_CHECK_MSG(false, "equality atom must be substituted away");
    }
  }
  return bounds;
}

}  // namespace

GeneralizedRelation EliminateVariable(const GeneralizedTuple& tuple, int var) {
  DODB_CHECK(var >= 0 && var < tuple.arity());
  GeneralizedRelation result(tuple.arity());

  // Reuse the tuple's own (typically already-closed) network; elimination
  // runs on job-local tuples, so the caching accessor is safe here.
  OrderGraph* graph = tuple.CachedGraph();
  if (!graph->IsSatisfiable()) return result;  // exists x. false == false

  // Case 1: x is (syntactically or derivedly) equal to another term:
  // substitute the representative.
  if (std::optional<Term> rep = graph->EqualityRep(var); rep.has_value()) {
    result.AddTuple(Substitute(tuple, var, *rep));
    return result;
  }
  // An explicit x = t atom without a derived representative cannot occur
  // (the closure would have merged the nodes), so classification is safe.

  // Case 2: Fourier-style pairing of lower and upper bounds, with explicit
  // handling of inequations (see header comment).
  Bounds bounds = ClassifyAtoms(tuple, var);

  GeneralizedTuple base(tuple.arity(), bounds.others);
  auto add_pairs = [&base](const std::vector<Term>& lows,
                           const std::vector<Term>& highs, RelOp op) {
    for (const Term& l : lows) {
      for (const Term& u : highs) {
        base.AddAtom(DenseAtom(l, op, u));
      }
    }
  };
  add_pairs(bounds.lower_strict, bounds.upper_strict, RelOp::kLt);
  add_pairs(bounds.lower_strict, bounds.upper_nonstrict, RelOp::kLt);
  add_pairs(bounds.lower_nonstrict, bounds.upper_strict, RelOp::kLt);
  add_pairs(bounds.lower_nonstrict, bounds.upper_nonstrict, RelOp::kLe);

  // Inequation splits: the feasible interval for x can only degenerate to a
  // single point when some nonstrict lower bound meets some nonstrict upper
  // bound; that point must avoid every forbidden term. The work list can
  // double per (forbidden, lower, upper) triple — the one exponential loop
  // in QE — so the guard ticks per split candidate; a trip abandons the
  // remaining splits (the evaluator surfaces the guard's Status, never this
  // partial relation).
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kQuantifierElim, 256);
  std::vector<GeneralizedTuple> work = {base};
  for (const Term& f : bounds.forbidden) {
    for (const Term& l : bounds.lower_nonstrict) {
      for (const Term& u : bounds.upper_nonstrict) {
        std::vector<GeneralizedTuple> next;
        next.reserve(work.size() * 2);
        for (const GeneralizedTuple& t : work) {
          if (!ticker.Tick()) return result;
          GeneralizedTuple strict = t;
          strict.AddAtom(DenseAtom(l, RelOp::kLt, u));
          if (strict.IsSatisfiable()) next.push_back(std::move(strict));
          GeneralizedTuple avoid = t;
          avoid.AddAtom(DenseAtom(l, RelOp::kNeq, f));
          if (avoid.IsSatisfiable()) next.push_back(std::move(avoid));
        }
        work = std::move(next);
      }
    }
  }
  for (GeneralizedTuple& t : work) result.AddTuple(std::move(t));
  return result;
}

GeneralizedRelation EliminateVariable(const GeneralizedRelation& relation,
                                      int var) {
  GeneralizedRelation result(relation.arity());
  const std::vector<GeneralizedTuple>& tuples = relation.tuples();
  QueryGuard* guard = CurrentQueryGuard();
  if (guard != nullptr &&
      !guard->Checkpoint(GuardSite::kQuantifierElim, tuples.size())) {
    return result;
  }
  if (!ShouldParallelize(tuples.size())) {
    GuardTicker ticker(guard, GuardSite::kQuantifierElim, 64);
    for (const GeneralizedTuple& tuple : tuples) {
      if (!ticker.Tick()) return result;
      GeneralizedRelation part = EliminateVariable(tuple, var);
      for (const GeneralizedTuple& t : part.tuples()) result.AddTuple(t);
    }
    return result;
  }
  // Per-tuple elimination is a pure function of the tuple (it builds fresh
  // constraint networks throughout); the subsumption-sensitive merge runs
  // sequentially in input order, so the output is bit-identical to the
  // inline loop above at any thread count. The closure-sweep and
  // canonical-form modes and the guard are read here and re-installed per
  // job — workers don't inherit the thread-local scopes.
  const bool closure_fast = ClosureFastPathEnabled();
  const bool minimal = MinimalCanonicalEnabled();
  std::vector<GeneralizedRelation> parts =
      ParallelMap<GeneralizedRelation>(
          tuples.size(), [&, closure_fast, minimal, guard](size_t i) {
            ClosureFastPathScope sweep(closure_fast);
            MinimalCanonicalScope canonical_mode(minimal);
            QueryGuardScope guard_scope(guard);
            if (guard != nullptr) {
              if ((i & 63) == 63 &&
                  !guard->Checkpoint(GuardSite::kQuantifierElim)) {
                return GeneralizedRelation(relation.arity());
              }
              if (guard->tripped()) {
                return GeneralizedRelation(relation.arity());
              }
            }
            return EliminateVariable(tuples[i], var);
          });
  GuardTicker merge_ticker(guard, GuardSite::kQuantifierElim, 64);
  for (const GeneralizedRelation& part : parts) {
    for (const GeneralizedTuple& t : part.tuples()) {
      if (!merge_ticker.Tick()) return result;
      result.AddTuple(t);
    }
  }
  return result;
}

GeneralizedRelation ProjectColumns(const GeneralizedRelation& relation,
                                   const std::vector<int>& keep) {
  std::vector<bool> kept(relation.arity(), false);
  for (int column : keep) {
    DODB_CHECK(column >= 0 && column < relation.arity());
    DODB_CHECK_MSG(!kept[column], "duplicate column in projection");
    kept[column] = true;
  }
  GeneralizedRelation current = relation;
  for (int column = 0; column < relation.arity(); ++column) {
    if (!kept[column]) current = EliminateVariable(current, column);
  }
  std::vector<int> mapping(relation.arity(), 0);
  // Eliminated columns no longer occur in any atom; map them to slot 0
  // harmlessly (ReindexTerm is never consulted for them).
  for (size_t i = 0; i < keep.size(); ++i) mapping[keep[i]] = static_cast<int>(i);
  GeneralizedRelation result(static_cast<int>(keep.size()));
  const std::vector<GeneralizedTuple>& tuples = current.tuples();
  result.AddTuplesParallel(tuples.size(), [&](size_t i) {
    return tuples[i].Reindexed(mapping, static_cast<int>(keep.size()));
  });
  return result;
}

}  // namespace dodb
