#include "constraints/generalized_tuple.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

GeneralizedTuple::GeneralizedTuple(int arity) : arity_(arity) {
  DODB_CHECK(arity >= 0);
}

GeneralizedTuple::GeneralizedTuple(int arity, std::vector<DenseAtom> atoms)
    : arity_(arity) {
  DODB_CHECK(arity >= 0);
  for (const DenseAtom& atom : atoms) AddAtom(atom);
}

GeneralizedTuple GeneralizedTuple::Point(const std::vector<Rational>& values) {
  GeneralizedTuple tuple(static_cast<int>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    tuple.AddAtom(DenseAtom(Term::Var(static_cast<int>(i)), RelOp::kEq,
                            Term::Const(values[i])));
  }
  return tuple;
}

namespace {
void CheckTermArity(const Term& term, int arity) {
  DODB_CHECK_MSG(!term.is_var() || term.var() < arity,
                 "atom variable index out of tuple arity");
}
}  // namespace

void GeneralizedTuple::AddAtom(DenseAtom atom) {
  CheckTermArity(atom.lhs(), arity_);
  CheckTermArity(atom.rhs(), arity_);
  atoms_.push_back(atom);
  graph_.reset();
  signature_.reset();
}

OrderGraph GeneralizedTuple::BuildGraph() const {
  OrderGraph graph(arity_);
  for (const DenseAtom& atom : atoms_) graph.AddAtom(atom);
  return graph;
}

OrderGraph* GeneralizedTuple::CachedGraph() const {
  if (!graph_) graph_ = std::make_shared<OrderGraph>(BuildGraph());
  return graph_.get();
}

const TupleSignature& GeneralizedTuple::CachedSignature() const {
  if (!signature_) {
    auto signature = std::make_shared<TupleSignature>();
    signature->hash = Hash();
    signature->columns =
        ExtractColumnBounds(arity_, atoms_.data(), atoms_.size());
    signature_ = std::move(signature);
  }
  return *signature_;
}

bool GeneralizedTuple::IsSatisfiable() const {
  return CachedGraph()->IsSatisfiable();
}

bool GeneralizedTuple::Entails(const DenseAtom& atom) const {
  return CachedGraph()->Entails(atom);
}

bool GeneralizedTuple::EntailsTuple(const GeneralizedTuple& other) const {
  DODB_CHECK(arity_ == other.arity_);
  OrderGraph* graph = CachedGraph();
  for (const DenseAtom& atom : other.atoms_) {
    if (!graph->Entails(atom)) return false;
  }
  return true;
}

GeneralizedTuple GeneralizedTuple::Canonical() const {
  OrderGraph* cached = CachedGraph();
  DODB_CHECK_MSG(cached->IsSatisfiable(),
                 "Canonical() on unsatisfiable tuple");
  // CanonicalAtomVec() emits the atoms sorted and oriented (see its
  // comment), so the list installs directly — no sort or orientation pass.
  // CanonicalAtomVec() only emits terms over this tuple's own variables, so
  // the per-atom arity checks in AddAtom are redundant: install directly.
  GeneralizedTuple out(arity_);
  out.atoms_ = cached->CanonicalAtomVec();
  // The closed network is the canonical form's own network too (all queries
  // are term-keyed), so a copy of it seeds the result's cache — downstream
  // entailment checks and quantifier elimination skip their closure pass.
  out.graph_ = std::make_shared<OrderGraph>(*cached);
  return out;
}

std::optional<GeneralizedTuple> GeneralizedTuple::CanonicalIfSatisfiable()
    const {
  OrderGraph graph = BuildGraph();
  if (!graph.Close()) return std::nullopt;
  // CanonicalAtomVec() emits the atoms sorted and oriented (see its
  // comment), so the list installs directly — no sort or orientation pass.
  GeneralizedTuple out(arity_);
  out.atoms_ = graph.CanonicalAtomVec();
  // Warm the result's own caches here (typically on a pool worker) so the
  // order-sensitive merge that follows only does closed-graph lookups and
  // precomputed-signature reads. The network just closed above is the
  // result's own network (canonical atoms describe exactly its closed edge
  // set, and every OrderGraph query is term-keyed), so it becomes the cache
  // directly instead of being rebuilt and re-closed.
  out.graph_ = std::make_shared<OrderGraph>(std::move(graph));
  out.CachedSignature();
  return out;
}

GeneralizedTuple GeneralizedTuple::Minimized() const {
  DODB_CHECK_MSG(IsSatisfiable(), "Minimized() on unsatisfiable tuple");
  std::vector<DenseAtom> kept = atoms_.ToVector();
  // Drop ground (constant-constant) truths outright, then greedily remove
  // atoms entailed by the rest. The greedy scan is order-dependent when two
  // atoms mutually entail (e.g. x0 <= 5 and x1 <= 5 under x0 = x1: dropping
  // either leaves the other entailing it), so the list is oriented and
  // sorted first and the scan runs from the back: of a mutually-entailing
  // pair the sorted-earliest atom survives, and a non-tightest bound —
  // entailed one-way by the tighter one, never the converse — is always the
  // one dropped. The result is a pure function of the atom *set*, not of
  // the order the atoms were written in.
  std::erase_if(kept, [](const DenseAtom& atom) {
    return atom.lhs().is_const() && atom.rhs().is_const();
  });
  for (DenseAtom& atom : kept) atom = atom.Oriented();
  std::sort(kept.begin(), kept.end());
  for (size_t i = kept.size(); i-- > 0;) {
    OrderGraph graph(arity_);
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) graph.AddAtom(kept[j]);
    }
    if (graph.Entails(kept[i])) kept.erase(kept.begin() + i);
  }
  return GeneralizedTuple(arity_, std::move(kept));
}

bool GeneralizedTuple::Contains(const std::vector<Rational>& point) const {
  DODB_CHECK(static_cast<int>(point.size()) == arity_);
  for (const DenseAtom& atom : atoms_) {
    if (!atom.Holds(point)) return false;
  }
  return true;
}

std::vector<Rational> GeneralizedTuple::Constants() const {
  std::set<Rational> seen;
  for (const DenseAtom& atom : atoms_) {
    if (atom.lhs().is_const()) seen.insert(atom.lhs().constant());
    if (atom.rhs().is_const()) seen.insert(atom.rhs().constant());
  }
  return std::vector<Rational>(seen.begin(), seen.end());
}

GeneralizedTuple GeneralizedTuple::Conjoin(
    const GeneralizedTuple& other) const {
  DODB_CHECK_MSG(arity_ == other.arity_, "Conjoin arity mismatch");
  GeneralizedTuple out = *this;
  for (const DenseAtom& atom : other.atoms_) out.AddAtom(atom);
  return out;
}

namespace {
Term ReindexTerm(const Term& term, const std::vector<int>& mapping,
                 int new_arity) {
  if (term.is_const()) return term;
  DODB_CHECK_MSG(term.var() < static_cast<int>(mapping.size()),
                 "Reindexed: variable outside mapping");
  int target = mapping[term.var()];
  DODB_CHECK_MSG(target >= 0 && target < new_arity,
                 "Reindexed: mapping target out of range");
  return Term::Var(target);
}
}  // namespace

GeneralizedTuple GeneralizedTuple::Reindexed(const std::vector<int>& mapping,
                                             int new_arity) const {
  GeneralizedTuple out(new_arity);
  for (const DenseAtom& atom : atoms_) {
    out.AddAtom(DenseAtom(ReindexTerm(atom.lhs(), mapping, new_arity),
                          atom.op(),
                          ReindexTerm(atom.rhs(), mapping, new_arity)));
  }
  return out;
}

GeneralizedTuple GeneralizedTuple::ReindexedCanonical(
    const std::vector<int>& mapping, int new_arity) const {
  // The closed network's edge set maps bijectively under an injective
  // renaming, and both Oriented() and the Compare-based sort are recomputed
  // from scratch below — so this reproduces CanonicalIfSatisfiable() on the
  // reindexed atoms without rebuilding or re-closing the network.
  std::vector<DenseAtom> atoms;
  atoms.reserve(atoms_.size());
  for (const DenseAtom& atom : atoms_) {
    atoms.push_back(DenseAtom(ReindexTerm(atom.lhs(), mapping, new_arity),
                              atom.op(),
                              ReindexTerm(atom.rhs(), mapping, new_arity))
                        .Oriented());
  }
  std::sort(atoms.begin(), atoms.end());
  GeneralizedTuple out(new_arity);
  // ReindexTerm already range-checked every variable against new_arity.
  out.atoms_ = AtomVec(std::move(atoms));
  // The signature (needed by every index probe) is computable straight from
  // the atom list, so warm it; the closure cache is left lazy — with the
  // index on, most renamed tuples are never entailment-checked at all.
  out.CachedSignature();
  return out;
}

std::optional<std::vector<Rational>> GeneralizedTuple::SampleWitness() const {
  return CachedGraph()->SampleWitness();
}

std::string GeneralizedTuple::ToString(
    const std::vector<std::string>* names) const {
  if (atoms_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const DenseAtom& atom : atoms_) parts.push_back(atom.ToString(names));
  return StrJoin(parts, " and ");
}

int GeneralizedTuple::Compare(const GeneralizedTuple& other) const {
  if (arity_ != other.arity_) return arity_ < other.arity_ ? -1 : 1;
  size_t n = std::min(atoms_.size(), other.atoms_.size());
  for (size_t i = 0; i < n; ++i) {
    int cmp = atoms_[i].Compare(other.atoms_[i]);
    if (cmp != 0) return cmp;
  }
  if (atoms_.size() != other.atoms_.size()) {
    return atoms_.size() < other.atoms_.size() ? -1 : 1;
  }
  return 0;
}

size_t GeneralizedTuple::Hash() const {
  size_t h = static_cast<size_t>(arity_) * 0x9e3779b97f4a7c15ull;
  for (const DenseAtom& atom : atoms_) {
    h ^= atom.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace dodb
