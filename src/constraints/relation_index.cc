#include "constraints/relation_index.h"

#include <algorithm>

#include "constraints/eval_counters.h"
#include "constraints/relation_shards.h"
#include "core/check.h"

namespace dodb {

RelationIndex::~RelationIndex() = default;

namespace {

// Clones the source's shard partition under its lazy-build mutex (a reader
// of the shared snapshot may be faulting the partition in concurrently).
// Carrying the partition across a copy-on-write detach is what keeps
// delete-heavy maintenance loops from paying a from-scratch quantile
// rebuild per erase: the copy is a flat vector clone, maintained
// incrementally by InsertAt/EraseAt from then on, and is NOT counted as a
// shard index build (relation_shards_test asserts on that).
std::unique_ptr<RelationShards> CloneShards(
    std::mutex& mu, const std::unique_ptr<RelationShards>& shards) {
  std::lock_guard<std::mutex> lock(mu);
  if (!shards) return nullptr;
  return std::make_unique<RelationShards>(*shards);
}

}  // namespace

RelationIndex::RelationIndex(const RelationIndex& other)
    : signatures_(other.signatures_),
      hash_counts_(other.hash_counts_),
      shards_(CloneShards(other.intervals_mu_, other.shards_)) {}

RelationIndex& RelationIndex::operator=(const RelationIndex& other) {
  if (this != &other) {
    signatures_ = other.signatures_;
    hash_counts_ = other.hash_counts_;
    std::unique_ptr<RelationShards> cloned =
        CloneShards(other.intervals_mu_, other.shards_);
    InvalidateIntervals();
    shards_ = std::move(cloned);
  }
  return *this;
}

RelationIndex::RelationIndex(RelationIndex&& other) noexcept
    : signatures_(std::move(other.signatures_)),
      hash_counts_(std::move(other.hash_counts_)),
      shards_(std::move(other.shards_)) {}

RelationIndex& RelationIndex::operator=(RelationIndex&& other) noexcept {
  if (this != &other) {
    signatures_ = std::move(other.signatures_);
    hash_counts_ = std::move(other.hash_counts_);
    InvalidateIntervals();
    shards_ = std::move(other.shards_);
  }
  return *this;
}

void RelationIndex::InvalidateIntervals() {
  std::lock_guard<std::mutex> lock(intervals_mu_);
  intervals_.clear();
}

const RelationShards* RelationIndex::Shards() const {
  std::lock_guard<std::mutex> lock(intervals_mu_);
  if (!shards_) {
    shards_ = std::make_unique<RelationShards>(signatures_);
    EvalCounters::AddShardIndexBuilds(1);
  }
  return shards_.get();
}

const ColumnIntervalIndex* RelationIndex::ShardIntervalIndex(
    uint32_t shard, int column) const {
  return Shards()->ShardIntervals(shard, column, signatures_);
}

const ColumnIntervalIndex* RelationIndex::IntervalIndex(int column) const {
  DODB_CHECK(column >= 0);
  std::lock_guard<std::mutex> lock(intervals_mu_);
  if (static_cast<size_t>(column) >= intervals_.size()) {
    intervals_.resize(column + 1);
  }
  if (!intervals_[column]) {
    intervals_[column] =
        std::make_unique<ColumnIntervalIndex>(signatures_, column);
  }
  return intervals_[column].get();
}

int RelationIndex::ProbeColumn(int arity) const {
  if (arity <= 0 || signatures_.empty()) return 0;
  int best = 0;
  size_t best_count = 0;
  for (int column = 0; column < arity; ++column) {
    size_t count = 0;
    for (const TupleSignature& signature : signatures_) {
      const ColumnBound& bound = signature.columns[column];
      if (bound.has_lower || bound.has_upper) ++count;
    }
    if (count > best_count) {
      best = column;
      best_count = count;
    }
  }
  return best;
}

RelationIndex RelationIndex::Build(
    const std::vector<GeneralizedTuple>& tuples) {
  RelationIndex index;
  index.signatures_.reserve(tuples.size());
  for (size_t pos = 0; pos < tuples.size(); ++pos) {
    index.signatures_.push_back(tuples[pos].CachedSignature());
    ++index.hash_counts_[index.signatures_.back().hash];
  }
  return index;
}

void RelationIndex::InsertAt(size_t pos, const TupleSignature& signature) {
  DODB_CHECK(pos <= signatures_.size());
  signatures_.insert(signatures_.begin() + pos, signature);
  ++hash_counts_[signature.hash];
  InvalidateIntervals();
  if (shards_) {
    shards_->InsertAt(pos, signature);
    // Quantile cuts go stale as the relation grows; drop the partition and
    // let the next use rebuild it (output-invariant either way — shard
    // layout only decides which pairs get tested, never which survive).
    if (shards_->NeedsRebuild()) shards_.reset();
  }
}

void RelationIndex::EraseAt(size_t pos) {
  DODB_CHECK(pos < signatures_.size());
  auto it = hash_counts_.find(signatures_[pos].hash);
  DODB_CHECK(it != hash_counts_.end() && it->second > 0);
  if (--it->second == 0) hash_counts_.erase(it);
  if (shards_) shards_->EraseAt(pos, signatures_[pos].hash);
  signatures_.erase(signatures_.begin() + pos);
  InvalidateIntervals();
}

bool RelationIndex::MayContainHash(size_t hash) const {
  return hash_counts_.count(hash) > 0;
}

void RelationIndex::AppendOverlapCandidates(const TupleSignature& probe,
                                            std::vector<size_t>* out) const {
  if (ShardingEnabled() && signatures_.size() >= RelationShards::kMinTuples) {
    const RelationShards* shards = Shards();
    const size_t num_shards = shards->shard_count();
    if (num_shards > 1) {
      // Shard-skipping scan: a shard whose cover box is disjoint from the
      // probe cannot hold an overlapping member (member boxes are contained
      // in the cover), so its tuples skip the per-signature test. The
      // survivor set is exactly the unsharded scan's — the cover check is a
      // superset filter of the per-pair test — and positions stay ascending.
      std::vector<char> live(num_shards, 0);
      uint64_t pruned = 0;
      for (uint32_t s = 0; s < num_shards; ++s) {
        const RelationShards::ShardStats& stats = shards->stats(s);
        if (stats.size == 0) {
          ++pruned;
          continue;
        }
        if (SignaturesMayOverlap(stats.cover, probe)) {
          live[s] = 1;
        } else {
          ++pruned;
        }
      }
      EvalCounters::AddShardPairs(num_shards, pruned);
      for (size_t pos = 0; pos < signatures_.size(); ++pos) {
        if (live[shards->shard_of(pos)] &&
            SignaturesMayOverlap(signatures_[pos], probe)) {
          out->push_back(pos);
        }
      }
      return;
    }
  }
  for (size_t pos = 0; pos < signatures_.size(); ++pos) {
    if (SignaturesMayOverlap(signatures_[pos], probe)) out->push_back(pos);
  }
}

bool RelationIndex::MatchesTuples(
    const std::vector<GeneralizedTuple>& tuples) const {
  if (tuples.size() != signatures_.size()) return false;
  std::unordered_map<size_t, uint32_t> expected_hashes;
  for (size_t pos = 0; pos < tuples.size(); ++pos) {
    const TupleSignature& expected = tuples[pos].CachedSignature();
    const TupleSignature& actual = signatures_[pos];
    if (expected.hash != actual.hash) return false;
    if (expected.columns.size() != actual.columns.size()) return false;
    for (size_t c = 0; c < expected.columns.size(); ++c) {
      const ColumnBound& e = expected.columns[c];
      const ColumnBound& a = actual.columns[c];
      if (e.has_lower != a.has_lower || e.has_upper != a.has_upper) {
        return false;
      }
      if (e.has_lower &&
          (e.lower_open != a.lower_open || e.lower != a.lower)) {
        return false;
      }
      if (e.has_upper &&
          (e.upper_open != a.upper_open || e.upper != a.upper)) {
        return false;
      }
    }
    ++expected_hashes[expected.hash];
  }
  return expected_hashes == hash_counts_;
}

namespace {

// Can this entry's lower bound sit at or under `value`? (With an open flag
// on either side, touching does not count.) Unbounded-below always fits.
bool LowerFitsUnder(const ColumnBound& entry, const Rational& value,
                    bool value_open) {
  if (!entry.has_lower) return true;
  int cmp = entry.lower.Compare(value);
  if (cmp != 0) return cmp < 0;
  return !entry.lower_open && !value_open;
}

}  // namespace

namespace {

std::vector<const TupleSignature*> AsPointers(
    const std::vector<TupleSignature>& signatures) {
  std::vector<const TupleSignature*> out;
  out.reserve(signatures.size());
  for (const TupleSignature& signature : signatures) out.push_back(&signature);
  return out;
}

}  // namespace

ColumnIntervalIndex::ColumnIntervalIndex(
    const std::vector<TupleSignature>& signatures, int column)
    : ColumnIntervalIndex(AsPointers(signatures), column) {}

ColumnIntervalIndex::ColumnIntervalIndex(
    const std::vector<const TupleSignature*>& signatures, int column)
    : column_(column) {
  by_lower_.reserve(signatures.size());
  for (size_t pos = 0; pos < signatures.size(); ++pos) {
    by_lower_.push_back(Entry{&signatures[pos]->columns[column], pos});
  }
  std::sort(by_lower_.begin(), by_lower_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.bound->has_lower != b.bound->has_lower) {
                return !a.bound->has_lower;  // unbounded-below first
              }
              if (!a.bound->has_lower) return a.pos < b.pos;
              int cmp = a.bound->lower.Compare(b.bound->lower);
              if (cmp != 0) return cmp < 0;
              if (a.bound->lower_open != b.bound->lower_open) {
                return !a.bound->lower_open;  // closed before open
              }
              return a.pos < b.pos;
            });
}

void ColumnIntervalIndex::AppendCandidates(const ColumnBound& probe,
                                           std::vector<size_t>* out) const {
  // Admissible entries (lower bound can sit under the probe's upper bound)
  // form a prefix of the sort order; binary-search its end, then filter the
  // window by the other half of the overlap test.
  auto end = by_lower_.end();
  if (probe.has_upper) {
    end = std::partition_point(
        by_lower_.begin(), by_lower_.end(), [&probe](const Entry& entry) {
          return LowerFitsUnder(*entry.bound, probe.upper, probe.upper_open);
        });
  }
  for (auto it = by_lower_.begin(); it != end; ++it) {
    if (BoundsMayOverlap(probe, *it->bound)) out->push_back(it->pos);
  }
}

int ChooseProbeColumn(const std::vector<const TupleSignature*>& signatures,
                      int arity) {
  if (arity <= 0 || signatures.empty()) return 0;
  int best = 0;
  size_t best_count = 0;
  for (int column = 0; column < arity; ++column) {
    size_t count = 0;
    for (const TupleSignature* signature : signatures) {
      const ColumnBound& bound = signature->columns[column];
      if (bound.has_lower || bound.has_upper) ++count;
    }
    if (count > best_count) {
      best = column;
      best_count = count;
    }
  }
  return best;
}

}  // namespace dodb
