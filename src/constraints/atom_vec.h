#ifndef DODB_CONSTRAINTS_ATOM_VEC_H_
#define DODB_CONSTRAINTS_ATOM_VEC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "constraints/dense_atom.h"

namespace dodb {

/// Flat append-only arena of packed DenseAtom records ({lhs, rhs, op} with
/// pool-slot constants — see Term), owned by a relation and shared by every
/// tuple whose atom list was placed in it. Chunked so placed spans have
/// stable addresses forever; a tuple's AtomVec keeps the arena alive through
/// a shared_ptr, so relations and their copies can die in any order.
///
/// Not internally synchronized: placement happens only on the thread
/// mutating the owning relation (the same exclusivity contract relation
/// mutation already has). Readers of *placed* spans on other threads are
/// safe — chunks never move or shrink, and span publication travels through
/// the same happens-before edges as the tuples holding them.
class AtomArena {
 public:
  AtomArena() = default;
  AtomArena(const AtomArena&) = delete;
  AtomArena& operator=(const AtomArena&) = delete;
  ~AtomArena();

  /// Copies `n` atoms into the arena and returns the placed span's base
  /// pointer (stable for the arena's lifetime).
  const DenseAtom* Place(const DenseAtom* atoms, size_t n);

  /// Bytes of atom storage allocated by this arena.
  uint64_t bytes() const { return bytes_; }

 private:
  static constexpr size_t kMinChunkAtoms = 512;

  std::vector<DenseAtom*> chunks_;
  size_t last_capacity_ = 0;
  size_t last_used_ = 0;
  uint64_t bytes_ = 0;
};

/// The atom storage of a generalized tuple: a small-size-inline vector of
/// trivially copyable DenseAtoms with a third, borrowed representation — a
/// span into an AtomArena (kept alive via shared_ptr). Replaces the old
/// per-tuple std::vector<DenseAtom>:
///   - canonical tuples under the minimal form fit inline (no heap at all),
///   - big atom lists spill to a normal heap vector,
///   - tuples stored in a relation are re-pointed at the relation's arena,
///     so copying a stored tuple (COW detach, join fan-out) copies a
///     pointer and a refcount instead of an atom array.
/// The exposed API is the read-only subset of std::vector that tuple code
/// uses (iteration, size, operator[]) plus push_back, which transparently
/// detaches a borrowed span before mutating.
class AtomVec {
 public:
  AtomVec() = default;
  AtomVec(const AtomVec&) = default;
  AtomVec& operator=(const AtomVec&) = default;
  AtomVec(AtomVec&&) noexcept = default;
  AtomVec& operator=(AtomVec&&) noexcept = default;

  /// Takes over a vector's buffer (no per-atom copy for big lists).
  explicit AtomVec(std::vector<DenseAtom> atoms);

  const DenseAtom* data() const {
    switch (rep_) {
      case Rep::kInline:
        return inline_;
      case Rep::kHeap:
        return heap_.data();
      case Rep::kSpan:
        return span_;
    }
    return inline_;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const DenseAtom* begin() const { return data(); }
  const DenseAtom* end() const { return data() + size_; }
  const DenseAtom& operator[](size_t i) const { return data()[i]; }
  const DenseAtom& back() const { return data()[size_ - 1]; }

  void push_back(const DenseAtom& atom);
  void clear();

  /// The atoms as a plain vector (copy; for call sites that edit the list).
  std::vector<DenseAtom> ToVector() const {
    return std::vector<DenseAtom>(begin(), end());
  }

  /// Whether the atoms live in an arena (borrowed span representation).
  bool is_arena_backed() const { return rep_ == Rep::kSpan; }

  /// Whether the atoms own a heap buffer (the only representation PlaceIn
  /// moves; inline lists are already allocation-free).
  bool is_heap_backed() const { return rep_ == Rep::kHeap; }

  /// Re-points a heap-backed list at storage placed inside `arena` and
  /// keeps the arena alive from this AtomVec. Inline lists stay inline
  /// (they are already allocation-free) and spans stay on their original
  /// arena. Returns the bytes newly placed (0 when nothing moved).
  uint64_t PlaceIn(const std::shared_ptr<AtomArena>& arena);

 private:
  enum class Rep : uint8_t { kInline, kHeap, kSpan };
  static constexpr size_t kInlineAtoms = 6;

  /// Copies a borrowed span back into owned storage before a mutation.
  void DetachSpan();

  Rep rep_ = Rep::kInline;
  uint32_t size_ = 0;
  DenseAtom inline_[kInlineAtoms];
  std::vector<DenseAtom> heap_;       // kHeap only
  const DenseAtom* span_ = nullptr;   // kSpan only
  std::shared_ptr<const AtomArena> keepalive_;  // kSpan only
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_ATOM_VEC_H_
