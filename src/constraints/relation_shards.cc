#include "constraints/relation_shards.h"

#include <algorithm>

#include "constraints/eval_counters.h"
#include "core/check.h"

namespace dodb {

namespace {

const ColumnBound& UnboundedKey() {
  static const ColumnBound kUnbounded;
  return kUnbounded;
}

const ColumnBound& FirstColumnKey(const TupleSignature& signature) {
  return signature.columns.empty() ? UnboundedKey() : signature.columns[0];
}

// member's admitted interval contained in cover's on one column.
bool BoundContains(const ColumnBound& cover, const ColumnBound& member) {
  if (cover.has_lower) {
    if (!member.has_lower) return false;
    if (CompareLowerBounds(cover, member) > 0) return false;
  }
  if (cover.has_upper) {
    if (!member.has_upper) return false;
    int cmp = member.upper.Compare(cover.upper);
    if (cmp > 0) return false;
    if (cmp == 0 && cover.upper_open && !member.upper_open) return false;
  }
  return true;
}

}  // namespace

RelationShards::RelationShards(const std::vector<TupleSignature>& signatures) {
  built_size_ = signatures.size();
  const size_t n = signatures.size();
  if (n >= kMinTuples) {
    // Quantile cuts over the sorted first-column lower bounds: aim for
    // kTargetSize tuples per shard, capped at kMaxShards. Duplicate keys
    // collapse (cuts are strictly increasing), so heavily repeated bounds
    // just yield fewer, larger shards.
    std::vector<const ColumnBound*> keys;
    keys.reserve(n);
    for (const TupleSignature& signature : signatures) {
      keys.push_back(&FirstColumnKey(signature));
    }
    std::sort(keys.begin(), keys.end(),
              [](const ColumnBound* a, const ColumnBound* b) {
                return CompareLowerBounds(*a, *b) < 0;
              });
    const size_t target = std::min(kMaxShards, (n + kTargetSize - 1) / kTargetSize);
    for (size_t k = 1; k < target; ++k) {
      const ColumnBound& candidate = *keys[k * n / target];
      if (cuts_.empty() || CompareLowerBounds(cuts_.back(), candidate) < 0) {
        cuts_.push_back(candidate);
      }
    }
  }
  stats_.resize(cuts_.size() + 1);
  shard_of_.reserve(n);
  for (const TupleSignature& signature : signatures) {
    uint32_t shard = ShardFor(signature);
    shard_of_.push_back(shard);
    Absorb(shard, signature);
  }
}

RelationShards::RelationShards(const RelationShards& other)
    : cuts_(other.cuts_),
      shard_of_(other.shard_of_),
      stats_(other.stats_),
      built_size_(other.built_size_) {}

RelationShards& RelationShards::operator=(const RelationShards& other) {
  if (this != &other) {
    cuts_ = other.cuts_;
    shard_of_ = other.shard_of_;
    stats_ = other.stats_;
    built_size_ = other.built_size_;
    InvalidateCaches();
  }
  return *this;
}

uint32_t RelationShards::ShardFor(const TupleSignature& signature) const {
  const ColumnBound& key = FirstColumnKey(signature);
  // Number of cuts at or below the key (cuts are strictly increasing).
  size_t lo = 0;
  size_t hi = cuts_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (CompareLowerBounds(cuts_[mid], key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint32_t>(lo);
}

void RelationShards::Absorb(uint32_t shard, const TupleSignature& signature) {
  ShardStats& stats = stats_[shard];
  ++stats.size;
  ++stats.hashes[signature.hash];
  if (!stats.cover_seeded) {
    stats.cover = signature;  // hull of one box is the box itself
    stats.cover.hash = 0;     // covers are boxes, not tuples
    stats.cover_seeded = true;
    return;
  }
  DODB_CHECK(stats.cover.columns.size() == signature.columns.size());
  for (size_t c = 0; c < signature.columns.size(); ++c) {
    WidenToCover(stats.cover.columns[c], signature.columns[c]);
  }
}

void RelationShards::InsertAt(size_t pos, const TupleSignature& signature) {
  DODB_CHECK(pos <= shard_of_.size());
  uint32_t shard = ShardFor(signature);
  shard_of_.insert(shard_of_.begin() + pos, shard);
  Absorb(shard, signature);
  InvalidateCaches();
}

void RelationShards::EraseAt(size_t pos, size_t hash) {
  DODB_CHECK(pos < shard_of_.size());
  ShardStats& stats = stats_[shard_of_[pos]];
  shard_of_.erase(shard_of_.begin() + pos);
  DODB_CHECK(stats.size > 0);
  --stats.size;
  auto it = stats.hashes.find(hash);
  DODB_CHECK(it != stats.hashes.end() && it->second > 0);
  if (--it->second == 0) stats.hashes.erase(it);
  // The cover stays as-is: it only widens, and a cover wider than the exact
  // member hull is still a sound overlap filter.
  InvalidateCaches();
}

void RelationShards::InvalidateCaches() {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  members_built_ = false;
  members_.clear();
  shard_intervals_.clear();
}

void RelationShards::EnsureMembers() const {
  if (members_built_) return;
  members_.assign(stats_.size(), {});
  for (uint32_t shard = 0; shard < stats_.size(); ++shard) {
    members_[shard].reserve(stats_[shard].size);
  }
  for (size_t pos = 0; pos < shard_of_.size(); ++pos) {
    members_[shard_of_[pos]].push_back(pos);
  }
  members_built_ = true;
}

const std::vector<size_t>& RelationShards::Members(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  EnsureMembers();
  return members_[shard];
}

const ColumnIntervalIndex* RelationShards::ShardIntervals(
    uint32_t shard, int column,
    const std::vector<TupleSignature>& signatures) const {
  DODB_CHECK(column >= 0);
  DODB_CHECK(signatures.size() == shard_of_.size());
  std::lock_guard<std::mutex> lock(lazy_mu_);
  EnsureMembers();
  if (shard_intervals_.size() < stats_.size()) {
    shard_intervals_.resize(stats_.size());
  }
  auto& row = shard_intervals_[shard];
  if (static_cast<size_t>(column) >= row.size()) {
    row.resize(column + 1);
  }
  if (!row[column]) {
    std::vector<const TupleSignature*> member_signatures;
    member_signatures.reserve(members_[shard].size());
    for (size_t pos : members_[shard]) {
      member_signatures.push_back(&signatures[pos]);
    }
    row[column] =
        std::make_unique<ColumnIntervalIndex>(member_signatures, column);
    EvalCounters::AddShardIndexBuilds(1);
  }
  return row[column].get();
}

bool RelationShards::SoundFor(
    const std::vector<TupleSignature>& signatures) const {
  if (signatures.size() != shard_of_.size()) return false;
  std::vector<size_t> sizes(stats_.size(), 0);
  std::vector<std::unordered_map<size_t, uint32_t>> hashes(stats_.size());
  for (size_t pos = 0; pos < signatures.size(); ++pos) {
    uint32_t shard = shard_of_[pos];
    if (shard >= stats_.size()) return false;
    if (ShardFor(signatures[pos]) != shard) return false;
    ++sizes[shard];
    ++hashes[shard][signatures[pos].hash];
    const ShardStats& stats = stats_[shard];
    if (!stats.cover_seeded) return false;
    if (stats.cover.columns.size() != signatures[pos].columns.size()) {
      return false;
    }
    for (size_t c = 0; c < stats.cover.columns.size(); ++c) {
      if (!BoundContains(stats.cover.columns[c], signatures[pos].columns[c])) {
        return false;
      }
    }
  }
  for (uint32_t shard = 0; shard < stats_.size(); ++shard) {
    if (sizes[shard] != stats_[shard].size) return false;
    if (hashes[shard] != stats_[shard].hashes) return false;
  }
  return true;
}

}  // namespace dodb
