#ifndef DODB_CONSTRAINTS_TUPLE_SIGNATURE_H_
#define DODB_CONSTRAINTS_TUPLE_SIGNATURE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "constraints/dense_atom.h"
#include "core/rational.h"

namespace dodb {

/// Constant bounds entailed for one column of a generalized tuple: the
/// tightest  lower op x  and  x op upper  constraints (op in {<, <=})
/// derivable from the tuple's var-constant atoms. Either side may be absent
/// (unbounded). On a closure-canonical tuple these are the tightest constant
/// bounds the conjunction implies at all, because path consistency
/// materializes the strongest relation between every variable and every
/// constant node.
struct ColumnBound {
  bool has_lower = false;
  bool lower_open = false;  // lower < x rather than lower <= x
  bool has_upper = false;
  bool upper_open = false;  // x < upper rather than x <= upper
  Rational lower;
  Rational upper;

  /// Folds one more bound into the summary, keeping the tighter side.
  void TightenLower(const Rational& value, bool open);
  void TightenUpper(const Rational& value, bool open);
};

/// Whether some rational can satisfy both bounds at once. False only when
/// the two intervals are provably disjoint, so a false result licenses
/// skipping the pair entirely (the conjunction forcing the two columns equal
/// is unsatisfiable).
bool BoundsMayOverlap(const ColumnBound& a, const ColumnBound& b);

/// Widens `cover` to the interval hull of `cover` and `add`: afterwards every
/// value admitted by either input is admitted by `cover`. Callers seeding a
/// cover from a member set must initialize it with the first member's bound —
/// a default-constructed ColumnBound is already the unbounded hull, so
/// widening it is a no-op. Used for per-shard cover boxes, which widen on
/// insert and are deliberately never re-tightened on erase (a stale-wide
/// cover is still a sound overlap filter).
void WidenToCover(ColumnBound& cover, const ColumnBound& add);

/// Total order on the lower sides of two bounds, treating an absent lower as
/// negative infinity and, on equal values, a closed bound as starting before
/// an open one. Returns <0, 0, >0. This is the shard key comparator: shards
/// partition tuples by where their first-column interval starts.
int CompareLowerBounds(const ColumnBound& a, const ColumnBound& b);

/// Cheap per-tuple summary consulted before any O(k^3) order-graph work:
/// one ColumnBound per column plus the hash of the atom list. Signatures are
/// computed once per tuple after canonicalization and never invalidated
/// (stored tuples are immutable); see GeneralizedTuple::CachedSignature.
struct TupleSignature {
  size_t hash = 0;
  std::vector<ColumnBound> columns;
};

/// Extracts the per-column bounds of a conjunction. Sound for any atom list
/// (every atom is entailed by the conjunction); tightest when the list is
/// closure-canonical — and the minimal canonical form (which keeps exactly
/// the tightest bound per side; see OrderGraph::CanonicalAtoms) yields the
/// same bounds as the full form, so signatures, index probes and shard
/// routing are invariant under the canonical-form mode.
std::vector<ColumnBound> ExtractColumnBounds(int arity, const DenseAtom* atoms,
                                             size_t count);

inline std::vector<ColumnBound> ExtractColumnBounds(
    int arity, const std::vector<DenseAtom>& atoms) {
  return ExtractColumnBounds(arity, atoms.data(), atoms.size());
}

/// The bound contributed by a single atom, if it is a var-constant
/// comparison: returns the column index and its bound, nullopt otherwise
/// (var-var atoms, inequations and ground atoms carry no box information).
std::optional<std::pair<int, ColumnBound>> BoundOfAtom(const DenseAtom& atom);

/// All-columns box test: false when some column's bounds are provably
/// disjoint, i.e. the conjunction of the two tuples (column-aligned) is
/// unsatisfiable without building an order graph.
bool SignaturesMayOverlap(const TupleSignature& a, const TupleSignature& b);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_TUPLE_SIGNATURE_H_
