#ifndef DODB_CONSTRAINTS_ORDER_GRAPH_H_
#define DODB_CONSTRAINTS_ORDER_GRAPH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "constraints/atom_vec.h"
#include "constraints/dense_atom.h"
#include "core/rational.h"

namespace dodb {

/// Point-algebra relation between two points of a dense total order,
/// encoded as a bitmask over the basic relations {<, =, >}.
using PaRel = uint8_t;

inline constexpr PaRel kPaEmpty = 0;   // unsatisfiable
inline constexpr PaRel kPaLt = 1;      // {<}
inline constexpr PaRel kPaEq = 2;      // {=}
inline constexpr PaRel kPaGt = 4;      // {>}
inline constexpr PaRel kPaLe = 3;      // {<, =}
inline constexpr PaRel kPaNeq = 5;     // {<, >}
inline constexpr PaRel kPaGe = 6;      // {=, >}
inline constexpr PaRel kPaAll = 7;     // no information

/// The bitmask corresponding to a RelOp.
PaRel RelOpToPa(RelOp op);

/// The RelOp corresponding to a non-trivial bitmask (not kPaEmpty/kPaAll).
RelOp PaToRelOp(PaRel rel);

/// Point-algebra composition: the strongest relation R such that
/// x R z is implied by (x r1 y) and (y r2 z) over a dense total order.
PaRel PaCompose(PaRel r1, PaRel r2);

/// Inverse relation: x R y iff y Inv(R) x.
PaRel PaInverse(PaRel rel);

/// Constraint network of a conjunction of dense-order atoms.
///
/// Nodes are the tuple's variables (0..num_vars-1) plus one node per distinct
/// rational constant appearing in the atoms. The closure is computed by
/// path-consistency over the point algebra, which decides satisfiability over
/// dense total orders without endpoints (van Beek); the closed matrix also
/// yields a sound entailment test and a deterministic canonical atom list.
class OrderGraph {
 public:
  /// An empty (all-true) network over `num_vars` variables.
  explicit OrderGraph(int num_vars);

  /// Adds an atom; variable indices must be < num_vars.
  void AddAtom(const DenseAtom& atom);

  /// Computes the path-consistent closure. Idempotent; called implicitly by
  /// the query methods below. Returns whether the conjunction is satisfiable.
  bool Close();

  bool IsSatisfiable() { return Close(); }

  int num_vars() const { return num_vars_; }
  /// Total node count after closure: variables plus discovered constants.
  int num_nodes() const { return static_cast<int>(node_terms_.size()); }
  /// The term labeling a node (variable or constant).
  const Term& node_term(int node) const { return node_terms_[node]; }

  /// The closed relation between two nodes. Requires a satisfiable network.
  PaRel RelBetween(int a, int b);

  /// The closed relation between a variable and a rational value (the value
  /// need not be a node: it is located relative to the constant nodes).
  /// Sound but conservative for values strictly between constant nodes.
  PaRel RelToValue(int var, const Rational& value);

  /// Whether the closure entails `atom` (sound; complete for the convex
  /// fragment). An unsatisfiable network entails everything.
  bool Entails(const DenseAtom& atom);

  /// Deterministic canonical conjunction equivalent to the closure,
  /// skipping constant-constant pairs. Var-var pairs always emit their
  /// informative closed relation. Var-const pairs depend on the mode:
  ///   - full form (MinimalCanonicalEnabled() == false): one atom per
  ///     informative pair, the previous milestone's behaviour;
  ///   - minimal form (default): per variable only the equality atom when
  ///     one exists, else the tightest lower bound, the tightest upper
  ///     bound, and the surviving inequations — every other var-const atom
  ///     is implied by transitivity through the constant scale (proof
  ///     sketch in the implementation and DESIGN.md §12).
  /// Both forms are logically equivalent to the closure; they differ as
  /// strings, so the mode must be held fixed across tuples that are
  /// structurally compared. Empty when the network is unsatisfiable is NOT
  /// the convention: call IsSatisfiable() first.
  std::vector<DenseAtom> CanonicalAtoms();

  /// CanonicalAtoms() into an AtomVec (small lists stay inline — the
  /// minimal form usually fits with zero heap traffic). Primary emitter;
  /// updates the canonical-form counters.
  AtomVec CanonicalAtomVec();

  /// A point of Q^num_vars satisfying the conjunction, or nullopt when
  /// unsatisfiable. Witnesses avoid all constant values unless forced equal.
  std::optional<std::vector<Rational>> SampleWitness();

  /// If the closure forces variable `var` equal to another node, the term of
  /// the preferred representative (a constant if available, else the lowest
  /// other variable index); nullopt otherwise.
  std::optional<Term> EqualityRep(int var);

 private:
  int NodeForConstant(const Rational& value);
  void EnsureMatrix(bool seed_constants);
  void Set(int a, int b, PaRel rel);
  /// Closed-matrix entry (i, j). Constant-constant pairs are answered from
  /// the value-rank array — their relation is the exact basic order of the
  /// two values, which seeding would only copy into the matrix; everything
  /// else reads the matrix. Valid whether or not the matrix was seeded.
  PaRel RelAt(int i, int j) const;

  int num_vars_;
  std::vector<Term> node_terms_;
  std::map<Rational, int> constant_nodes_;
  std::vector<std::pair<std::pair<int, int>, PaRel>> pending_;  // atom edges
  std::vector<PaRel> rel_;  // row-major num_nodes x num_nodes, after Close()
  std::vector<int> const_rank_;  // node -> rank of its value on the scale
  bool closed_ = false;
  bool satisfiable_ = true;
  bool forced_unsat_ = false;  // a ground atom was already false
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_ORDER_GRAPH_H_
