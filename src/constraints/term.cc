#include "constraints/term.h"

#include <ostream>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

Term Term::Var(int index) {
  DODB_CHECK_MSG(index >= 0, "negative variable index");
  return Term(static_cast<int32_t>(index), 0);
}

Term Term::Const(const Rational& value) {
  return Term(-1, ConstPool::Intern(value));
}

int Term::var() const {
  DODB_CHECK_MSG(index_ >= 0, "Term::var() on a constant");
  return index_;
}

const Rational& Term::constant() const {
  DODB_CHECK_MSG(index_ < 0, "Term::constant() on a variable");
  return ConstPool::Value(slot_);
}

uint32_t Term::const_slot() const {
  DODB_CHECK_MSG(index_ < 0, "Term::const_slot() on a variable");
  return slot_;
}

std::string Term::ToString(const std::vector<std::string>* names) const {
  if (is_var()) {
    if (names != nullptr && index_ < static_cast<int>(names->size())) {
      return (*names)[index_];
    }
    return StrCat("x", index_);
  }
  return constant().ToString();
}

size_t Term::Hash() const {
  if (is_var()) return 0x517cc1b727220a95ull ^ static_cast<size_t>(index_);
  return ConstPool::HashOf(slot_);
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace dodb
