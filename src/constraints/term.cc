#include "constraints/term.h"

#include <ostream>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

Term Term::Var(int index) {
  DODB_CHECK_MSG(index >= 0, "negative variable index");
  return Term(/*is_var=*/true, index, Rational());
}

Term Term::Const(Rational value) {
  return Term(/*is_var=*/false, -1, std::move(value));
}

int Term::var() const {
  DODB_CHECK_MSG(is_var_, "Term::var() on a constant");
  return index_;
}

const Rational& Term::constant() const {
  DODB_CHECK_MSG(!is_var_, "Term::constant() on a variable");
  return value_;
}

std::string Term::ToString(const std::vector<std::string>* names) const {
  if (is_var_) {
    if (names != nullptr && index_ < static_cast<int>(names->size())) {
      return (*names)[index_];
    }
    return StrCat("x", index_);
  }
  return value_.ToString();
}

size_t Term::Hash() const {
  if (is_var_) return 0x517cc1b727220a95ull ^ static_cast<size_t>(index_);
  return value_.Hash();
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace dodb
