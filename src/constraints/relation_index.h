#ifndef DODB_CONSTRAINTS_RELATION_INDEX_H_
#define DODB_CONSTRAINTS_RELATION_INDEX_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "constraints/generalized_tuple.h"
#include "constraints/tuple_signature.h"

namespace dodb {

class ColumnIntervalIndex;
class RelationShards;

/// Position-parallel index over a GeneralizedRelation's stored tuple vector:
/// one TupleSignature per tuple plus a multiset of canonical-form hashes.
/// Built lazily on first use and maintained incrementally by
/// GeneralizedRelation::AddCanonicalTuple, mirroring its insert/erase
/// positions exactly.
///
/// What it buys:
///   - duplicate rejection: a candidate whose hash is absent from the
///     multiset cannot be stored already, so the Compare-based search is
///     skipped (O(1) amortized for the fixpoint-dominant fresh-tuple case);
///   - subsumption restriction: a candidate can subsume or be subsumed only
///     by tuples whose bound boxes overlap its own (both tuples are
///     satisfiable, so a subsumption in either direction forces the boxes
///     to share a point), which turns the O(n) EntailsTuple scan into a
///     cheap box filter plus a few real entailment checks.
///
/// Not thread-safe: relations are only mutated (and hence indexed) on their
/// owning thread — pool workers receive copies. Copies of a relation share
/// the index snapshot; the first mutation of a sharing copy clones it.
class RelationIndex {
 public:
  RelationIndex() = default;
  ~RelationIndex();
  // Copies/moves carry the signatures, the hash multiset and the shard
  // partition (cloned under the source's lazy-build mutex, so a concurrent
  // lazy build on the shared snapshot cannot race the copy); only the lazy
  // interval caches are rebuilt on demand. Carrying the partition matters
  // for delete-heavy view maintenance: every erase detaches the shared
  // index snapshot first, and before this the detach dropped the partition,
  // charging a from-scratch shard rebuild per erase.
  RelationIndex(const RelationIndex& other);
  RelationIndex& operator=(const RelationIndex& other);
  RelationIndex(RelationIndex&& other) noexcept;
  RelationIndex& operator=(RelationIndex&& other) noexcept;

  /// From-scratch build over a tuple vector (the lazy path).
  static RelationIndex Build(const std::vector<GeneralizedTuple>& tuples);

  /// Mirror of tuples.insert(tuples.begin() + pos, tuple).
  void InsertAt(size_t pos, const TupleSignature& signature);
  /// Mirror of tuples.erase(tuples.begin() + pos).
  void EraseAt(size_t pos);

  /// False guarantees no stored tuple has this canonical-form hash (so no
  /// exact duplicate exists); true means "possibly present, confirm".
  bool MayContainHash(size_t hash) const;

  /// Appends, in ascending position order, every position whose bound box
  /// overlaps `probe` on all columns — the only positions that can be in a
  /// subsumption relation (either direction) with a tuple of signature
  /// `probe`.
  void AppendOverlapCandidates(const TupleSignature& probe,
                               std::vector<size_t>* out) const;

  size_t size() const { return signatures_.size(); }
  const TupleSignature& signature(size_t pos) const {
    return signatures_[pos];
  }

  /// The sorted-endpoint interval index over `column`, built lazily on
  /// first use and cached until the next InsertAt/EraseAt (incremental
  /// maintenance by invalidation: mutation drops the cache, the next probe
  /// rebuilds). Thread-safe for concurrent probes of a shared snapshot —
  /// rule jobs within a Datalog round reuse one build — under the engine
  /// contract that nobody mutates a shared relation. Returned pointer stays
  /// valid until the next mutation.
  const ColumnIntervalIndex* IntervalIndex(int column) const;

  /// Deterministic probe-column heuristic over the stored signatures: the
  /// column (of `arity`) with the most bounded entries, ties to the lowest
  /// index — where interval windowing discriminates best.
  int ProbeColumn(int arity) const;

  /// The signature-bound shard partition of the indexed tuples (see
  /// relation_shards.h), built lazily on first use and thereafter maintained
  /// incrementally by InsertAt/EraseAt (copies carry it); dropped (and
  /// lazily rebuilt) once the relation doubles past the partition's build
  /// size. Thread-safe for concurrent readers of a shared snapshot,
  /// like IntervalIndex(). Returned pointer stays valid until the next
  /// mutation.
  const RelationShards* Shards() const;

  /// Convenience forwarder: the lazy interval index over `column` restricted
  /// to one shard's members (positions in the returned index are local —
  /// indexes into RelationShards::Members(shard)).
  const ColumnIntervalIndex* ShardIntervalIndex(uint32_t shard,
                                                int column) const;

  /// Test hook: whether this index is exactly the from-scratch build of
  /// `tuples` (signatures position by position, hash multiset).
  bool MatchesTuples(const std::vector<GeneralizedTuple>& tuples) const;

 private:
  void InvalidateIntervals();

  std::vector<TupleSignature> signatures_;
  std::unordered_map<size_t, uint32_t> hash_counts_;
  // Lazy per-column interval indexes; see IntervalIndex().
  mutable std::mutex intervals_mu_;
  mutable std::vector<std::unique_ptr<ColumnIntervalIndex>> intervals_;
  // Lazy shard partition; see Shards(). Lazy build is guarded by
  // intervals_mu_; incremental maintenance happens on the owning thread
  // only (mutation is never concurrent with reads of the same index).
  mutable std::unique_ptr<RelationShards> shards_;
};

/// Probe-side sorted-endpoint index over one column of a tuple list, built
/// per join/intersect call on the build side (the smaller role): entries
/// sorted by lower bound, unbounded-below entries first. A probe interval
/// [l, u] binary-searches the prefix of entries whose lower bound can sit
/// under u, then filters that window by upper-vs-l — output-sensitive on
/// workloads whose tuples are constant-separated (points, scattered
/// intervals), never worse than the cheap linear box filter.
class ColumnIntervalIndex {
 public:
  /// `signatures` must outlive the index. `column` selects which
  /// ColumnBound the entries are keyed on.
  ColumnIntervalIndex(const std::vector<const TupleSignature*>& signatures,
                      int column);
  ColumnIntervalIndex(const std::vector<TupleSignature>& signatures,
                      int column);

  /// Appends every position whose `column` interval may overlap `probe`
  /// (unsorted; callers sort the final candidate list once).
  void AppendCandidates(const ColumnBound& probe,
                        std::vector<size_t>* out) const;

 private:
  struct Entry {
    const ColumnBound* bound;
    size_t pos;
  };

  int column_;
  std::vector<Entry> by_lower_;  // sorted: unbounded-below first, then lower
};

/// Deterministic probe-column heuristic: the column with the most bounded
/// entries across `signatures` (ties to the lowest index), i.e. the column
/// where interval windowing discriminates best. Returns 0 for arity 0 /
/// empty input.
int ChooseProbeColumn(const std::vector<const TupleSignature*>& signatures,
                      int arity);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_RELATION_INDEX_H_
