#ifndef DODB_CONSTRAINTS_CLOSURE_CACHE_H_
#define DODB_CONSTRAINTS_CLOSURE_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "constraints/generalized_tuple.h"

namespace dodb {

/// Memo of closure canonicalizations keyed by a 128-bit fingerprint of the
/// exact raw atom list. Semi-naive fixpoints re-derive the same candidate
/// conjunctions round after round (a rule refired against an overlapping
/// delta regenerates mostly-known tuples); canonicalization is the O(k^3)
/// closure pass, so serving repeats from a memo removes the dominant
/// per-candidate cost.
///
/// Keying on a fingerprint rather than a stored copy of the atoms keeps both
/// sides of the memo cheap: a miss stores only the canonical result (no
/// 100+-atom key copy) and a hit does one table probe (no atom-by-atom key
/// comparison). The fingerprint is two independent order-sensitive 64-bit
/// accumulations over per-atom hashes, so two distinct atom lists collide
/// only with probability ~2^-128 per pair — far below any realistic key-set
/// size — and it is a pure function of the atoms, so lookups stay
/// deterministic across runs and thread counts.
///
/// Thread-safe: the table is sharded into hash-bucketed stripes, each under
/// its own mutex, so pool workers canonicalizing in parallel rarely contend.
/// Misses compute outside any lock. Entries live for the lifetime of the
/// cache (one Datalog Evaluate call, or one FO query); there is no eviction
/// — the key set is bounded by the distinct candidates the evaluation
/// generates, which the max_tuples limit already bounds indirectly.
class ClosureCache {
 public:
  ClosureCache() = default;
  ClosureCache(const ClosureCache&) = delete;
  ClosureCache& operator=(const ClosureCache&) = delete;

  /// Equivalent to tuple.CanonicalIfSatisfiable(), served from the memo
  /// when this exact atom list has been canonicalized before.
  std::optional<GeneralizedTuple> CanonicalIfSatisfiable(
      GeneralizedTuple tuple);

  /// Distinct atom lists memoized so far (diagnostic; takes all stripes).
  size_t size() const;

 private:
  struct Entry {
    uint64_t hi;  // second fingerprint word; the first keys the map
    std::optional<GeneralizedTuple> canonical;
  };
  struct Stripe {
    std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> entries;
  };
  static constexpr size_t kStripes = 16;

  mutable std::array<Stripe, kStripes> stripes_;
};

/// The closure memo installed on this thread, or nullptr. Evaluators
/// install a ClosureCacheScope from EvalOptions::closure_cache (or a local
/// cache); GeneralizedRelation's insertion paths read it once on the
/// calling thread and capture the pointer into worker lambdas, so the memo
/// reaches pool workers without relying on thread-local inheritance.
ClosureCache* CurrentClosureCache();

/// RAII thread-local override of CurrentClosureCache(), mirroring
/// IndexModeScope. nullptr disables memoization within the scope.
class ClosureCacheScope {
 public:
  explicit ClosureCacheScope(ClosureCache* cache);
  ~ClosureCacheScope();
  ClosureCacheScope(const ClosureCacheScope&) = delete;
  ClosureCacheScope& operator=(const ClosureCacheScope&) = delete;

 private:
  ClosureCache* prev_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_CLOSURE_CACHE_H_
