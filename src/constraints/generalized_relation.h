#ifndef DODB_CONSTRAINTS_GENERALIZED_RELATION_H_
#define DODB_CONSTRAINTS_GENERALIZED_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "constraints/generalized_tuple.h"

namespace dodb {

/// A k-ary finitely representable relation [KKR90]: a finite set of k-ary
/// generalized tuples, denoting the union of their point sets (a
/// quantifier-free DNF formula over the dense-order language).
///
/// Invariants maintained by AddTuple: every stored tuple is satisfiable and
/// in canonical (closure) form, no stored tuple is subsumed by another, and
/// tuples are kept sorted for deterministic output. Semantic operations
/// (union, complement, projection, ...) live in algebra/relational_ops.h.
class GeneralizedRelation {
 public:
  /// The empty relation over Q^arity (formula "false").
  explicit GeneralizedRelation(int arity);

  /// The full space Q^arity (formula "true": one all-true tuple).
  static GeneralizedRelation True(int arity);
  /// Alias of the default constructor, for symmetry.
  static GeneralizedRelation False(int arity);

  /// A classical finite relation: one point tuple per row.
  static GeneralizedRelation FromPoints(
      int arity, const std::vector<std::vector<Rational>>& points);

  int arity() const { return arity_; }
  const std::vector<GeneralizedTuple>& tuples() const { return tuples_; }
  bool IsEmpty() const { return tuples_.empty(); }
  size_t tuple_count() const { return tuples_.size(); }
  /// Total atom count across tuples (representation-size metric of §3).
  size_t atom_count() const;

  /// Inserts a tuple: drops it when unsatisfiable or subsumed by an existing
  /// tuple; removes existing tuples it subsumes. Keeps canonical order.
  void AddTuple(GeneralizedTuple tuple);

  /// AddTuple for a tuple already in closure-canonical form (as produced by
  /// GeneralizedTuple::CanonicalIfSatisfiable): skips the satisfiability
  /// check and re-canonicalization, keeps the same pruning contract.
  void AddCanonicalTuple(GeneralizedTuple canonical);

  /// Evaluates make(i) for every i in [0, n) — on the shared thread pool
  /// when the current eval-thread setting allows — and inserts the results
  /// in index order. Bit-identical to `for (i) AddTuple(make(i))` at any
  /// thread count: per-candidate closure/canonicalization is a pure function
  /// of the candidate and runs on the workers, while the order-sensitive
  /// subsumption merge stays sequential. `make` must be safe to call
  /// concurrently for distinct indices (reading shared tuples and copying
  /// them is safe; calling their caching accessors is not).
  void AddTuplesParallel(size_t n,
                         const std::function<GeneralizedTuple(size_t)>& make);

  /// Point membership in the represented (possibly infinite) point set.
  bool Contains(const std::vector<Rational>& point) const;

  /// Distinct constants across all tuples, ascending (the relation's
  /// "active scale" used by the cell decomposition and standard encoding).
  std::vector<Rational> Constants() const;

  /// Syntactic equality of canonical representations (sound for equality;
  /// semantic equality is decided via cells::SemanticallyEqual).
  bool StructurallyEquals(const GeneralizedRelation& other) const;

  /// "{ tuple ; tuple ; ... }" or "{}".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  int arity_;
  std::vector<GeneralizedTuple> tuples_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_GENERALIZED_RELATION_H_
