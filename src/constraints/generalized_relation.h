#ifndef DODB_CONSTRAINTS_GENERALIZED_RELATION_H_
#define DODB_CONSTRAINTS_GENERALIZED_RELATION_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "constraints/generalized_tuple.h"
#include "constraints/paged_source.h"
#include "constraints/relation_index.h"

namespace dodb {

/// A k-ary finitely representable relation [KKR90]: a finite set of k-ary
/// generalized tuples, denoting the union of their point sets (a
/// quantifier-free DNF formula over the dense-order language).
///
/// Invariants maintained by AddTuple: every stored tuple is satisfiable and
/// in canonical (closure) form, no stored tuple is subsumed by another, and
/// tuples are kept sorted for deterministic output. Semantic operations
/// (union, complement, projection, ...) live in algebra/relational_ops.h.
class GeneralizedRelation {
 public:
  /// The empty relation over Q^arity (formula "false").
  explicit GeneralizedRelation(int arity);

  /// Copies share tuple storage (copy-on-write), the index snapshot and any
  /// paged state, but never the atom arena: the arena is an append-only
  /// buffer owned by the thread mutating this relation, and two relations
  /// appending to one arena would race. The copy starts a fresh arena on its
  /// first insert; tuples it shares keep their spans alive through per-tuple
  /// refs.
  GeneralizedRelation(const GeneralizedRelation& other)
      : arity_(other.arity_),
        tuples_(other.tuples_),
        index_(other.index_),
        paged_(other.paged_) {}
  GeneralizedRelation& operator=(const GeneralizedRelation& other) {
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    index_ = other.index_;
    paged_ = other.paged_;
    arena_.reset();
    return *this;
  }
  GeneralizedRelation(GeneralizedRelation&&) noexcept = default;
  GeneralizedRelation& operator=(GeneralizedRelation&&) noexcept = default;

  /// The full space Q^arity (formula "true": one all-true tuple).
  static GeneralizedRelation True(int arity);
  /// Alias of the default constructor, for symmetry.
  static GeneralizedRelation False(int arity);

  /// A classical finite relation: one point tuple per row.
  static GeneralizedRelation FromPoints(
      int arity, const std::vector<std::vector<Rational>>& points);

  /// Installs an already-canonical tuple vector verbatim, trusting the
  /// caller for every AddTuple invariant (each tuple satisfiable and in
  /// closure form, pairwise non-subsuming, sorted). The binary snapshot
  /// loader uses this to rebuild a relation exactly as it was stored —
  /// skipping the closure and subsumption passes is what makes binary load
  /// several times faster than a text parse. Integrity of the input is the
  /// snapshot CRC's responsibility.
  static GeneralizedRelation FromCanonicalTuples(
      int arity, std::vector<GeneralizedTuple> tuples);

  /// A relation whose canonical tuple vector lives out-of-core behind
  /// `source` (same ordering/invariants as FromCanonicalTuples, positions
  /// [0, source->tuple_count())). `index` is the RelationIndex built over
  /// those tuples before they were spilled — signatures, shards and
  /// interval structures stay resident so joins and subsumption prune
  /// without touching a single page. tuples() transparently materializes
  /// (the relation behaves exactly like its resident twin, paying one full
  /// decode); the streaming algebra paths consult PagedRuns() instead and
  /// never materialize. Any mutation residentizes first.
  static GeneralizedRelation FromPagedSource(
      std::shared_ptr<const PagedTupleSource> source,
      std::shared_ptr<RelationIndex> index);

  /// Whether the tuple payload currently lives behind a PagedTupleSource
  /// (false again after anything forces materialization + mutation).
  bool is_paged() const { return paged_ != nullptr; }

  /// The shared decoded-run cache of a paged relation; nullptr when
  /// resident. Streaming operators read tuples through this.
  std::shared_ptr<PagedRunCache> PagedRuns() const {
    return paged_ ? paged_->runs : nullptr;
  }
  /// The paged source; nullptr when resident.
  std::shared_ptr<const PagedTupleSource> PagedSource() const {
    return paged_ ? paged_->source : nullptr;
  }

  /// The lazily built index as a shareable handle (the spill path hands it
  /// to FromPagedSource so the paged twin reuses the resident build).
  std::shared_ptr<RelationIndex> SharedIndex() const;

  int arity() const { return arity_; }
  /// The canonical tuple vector. For a paged relation this materializes the
  /// whole payload on first touch (counted as a paged_materialization); a
  /// fetch failure trips the current query guard and yields the empty
  /// vector — the guard's Status is what the query surfaces. Materializing
  /// through copies that share one PagedState is thread-safe (they share
  /// the decode, too); touching one *object* from several threads is not,
  /// same as every other caching accessor here.
  const std::vector<GeneralizedTuple>& tuples() const;
  bool IsEmpty() const {
    if (tuples_) return tuples_->empty();
    return !paged_ || paged_->source->tuple_count() == 0;
  }
  size_t tuple_count() const {
    if (tuples_) return tuples_->size();
    return paged_ ? paged_->source->tuple_count() : 0;
  }
  /// Total atom count across tuples (representation-size metric of §3).
  size_t atom_count() const;

  /// Inserts a tuple: drops it when unsatisfiable or subsumed by an existing
  /// tuple; removes existing tuples it subsumes. Keeps canonical order.
  void AddTuple(GeneralizedTuple tuple);

  /// AddTuple for a tuple already in closure-canonical form (as produced by
  /// GeneralizedTuple::CanonicalIfSatisfiable): skips the satisfiability
  /// check and re-canonicalization, keeps the same pruning contract.
  void AddCanonicalTuple(GeneralizedTuple canonical);

  /// AddCanonicalTuple that reports the structural delta: returns whether
  /// the tuple was actually inserted (false = exact duplicate or subsumed by
  /// a stored tuple) and, when `erased` is non-null, appends every stored
  /// tuple the insert displaced by subsumption. The view-maintenance layer
  /// uses this to capture per-statement base deltas without diffing whole
  /// relations. Identical relation state to AddCanonicalTuple.
  bool AddCanonicalTupleCaptured(GeneralizedTuple canonical,
                                 std::vector<GeneralizedTuple>* erased);

  /// Structurally removes the stored tuple equal to `canonical` (Compare ==
  /// 0); returns whether it was present. The index mirror is maintained
  /// incrementally (no rebuild); in legacy (unindexed) mode the stale index
  /// snapshot is dropped instead. Note this is *structural* removal — the
  /// semantic counterpart (pointset subtraction) is algebra::Difference.
  bool EraseCanonicalTuple(const GeneralizedTuple& canonical);

  /// Evaluates make(i) for every i in [0, n) — on the shared thread pool
  /// when the current eval-thread setting allows — and inserts the results
  /// in index order. Bit-identical to `for (i) AddTuple(make(i))` at any
  /// thread count: per-candidate closure/canonicalization is a pure function
  /// of the candidate and runs on the workers, while the order-sensitive
  /// subsumption merge stays sequential. `make` must be safe to call
  /// concurrently for distinct indices (reading shared tuples and copying
  /// them is safe; calling their caching accessors is not).
  void AddTuplesParallel(size_t n,
                         const std::function<GeneralizedTuple(size_t)>& make);

  /// Point membership in the represented (possibly infinite) point set.
  bool Contains(const std::vector<Rational>& point) const;

  /// Distinct constants across all tuples, ascending (the relation's
  /// "active scale" used by the cell decomposition and standard encoding).
  std::vector<Rational> Constants() const;

  /// Syntactic equality of canonical representations (sound for equality;
  /// semantic equality is decided via cells::SemanticallyEqual).
  bool StructurallyEquals(const GeneralizedRelation& other) const;

  /// The relation's constraint-signature index, built lazily from the
  /// stored tuples and thereafter maintained incrementally by
  /// AddCanonicalTuple (while IndexingEnabled(); a legacy-mode mutation
  /// drops it so it can never go stale). Copies share the index until one
  /// of them mutates. Not safe to call concurrently on a relation shared
  /// across threads — mutation, and hence indexing, happens on the owning
  /// thread only.
  const RelationIndex& Index() const;

  /// "{ tuple ; tuple ; ... }" or "{}".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  /// Index() that is safe to mutate: clones a shared snapshot first, builds
  /// from scratch when absent.
  RelationIndex* MutableIndex();

  /// Pre-index insertion path (all-pairs subsumption scan), kept selectable
  /// via EvalOptions::use_index for differential testing and benchmarking.
  /// Bit-identical relation state to the indexed path.
  bool AddCanonicalTupleLegacy(GeneralizedTuple canonical,
                               std::vector<GeneralizedTuple>* erased);

  /// Moves an accepted tuple's heap-backed atom list into this relation's
  /// arena (allocating the arena on first use); counts a reuse hit when the
  /// tuple already borrows an arena span (typically another relation's —
  /// storing it is then a pointer copy, no atom traffic at all).
  void PlaceInArena(GeneralizedTuple& tuple);

  /// The tuple vector, unshared: clones a vector other copies of the
  /// relation still reference (copy-on-write), allocates when still empty.
  /// Every mutation goes through this. A paged relation materializes first
  /// and drops its paged state — the spilled image would go stale.
  std::vector<GeneralizedTuple>& MutableTuples();

  /// Out-of-core payload of a spilled relation, shared by all its copies.
  /// `materialized` caches the one full decode (guarded by mu), so copies
  /// that each get touched pay for a single decode between them.
  struct PagedState {
    std::shared_ptr<const PagedTupleSource> source;
    std::shared_ptr<PagedRunCache> runs;
    std::mutex mu;
    std::shared_ptr<std::vector<GeneralizedTuple>> materialized;
  };

  /// Ensures tuples_ is set (decoding every run of paged_ when needed).
  /// Trips the current guard on fetch failure; see tuples().
  void MaterializeIfPaged() const;

  int arity_;
  // Copy-on-write tuple storage: copies of a relation (per-round fixpoint
  // snapshots, the accumulator copy inside algebra::Union) share one vector
  // until a mutation detaches it, so a relation copy is O(1) instead of a
  // deep copy of every tuple. nullptr means empty (the common transient
  // case: algebra operators construct many empty intermediates) — unless
  // paged_ is set, in which case the payload lives out-of-core and this is
  // its lazily filled materialization cache.
  mutable std::shared_ptr<std::vector<GeneralizedTuple>> tuples_;
  // See Index(). shared_ptr with the same sharing discipline.
  mutable std::shared_ptr<RelationIndex> index_;
  // See PagedState; nullptr for resident relations.
  mutable std::shared_ptr<PagedState> paged_;
  // Flat atom storage for stored tuples (see AtomArena): created on the
  // first insert that has a heap-backed atom list to place, deliberately
  // NOT shared by copies (see the copy constructor). Tuples hold their own
  // keepalive refs, so resetting this never dangles a span.
  std::shared_ptr<AtomArena> arena_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_GENERALIZED_RELATION_H_
