#ifndef DODB_CONSTRAINTS_GENERALIZED_TUPLE_H_
#define DODB_CONSTRAINTS_GENERALIZED_TUPLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "constraints/atom_vec.h"
#include "constraints/dense_atom.h"
#include "constraints/order_graph.h"
#include "constraints/tuple_signature.h"
#include "core/rational.h"

namespace dodb {

/// A k-ary generalized tuple [KKR90]: a conjunction of dense-order atomic
/// constraints over the variables x0..x(k-1), finitely representing the
/// (potentially infinite) set of points of Q^k that satisfy it.
///
/// Example: (x0 <= x1 and x0 >= 0 and x1 <= 10) is a binary generalized
/// tuple representing a triangle-like region of the rational plane.
class GeneralizedTuple {
 public:
  /// The all-true tuple over Q^arity (no atoms).
  explicit GeneralizedTuple(int arity);
  GeneralizedTuple(int arity, std::vector<DenseAtom> atoms);

  /// The classical relational tuple (v0,...,vk-1) as the constraint
  /// x0 = v0 and ... and x(k-1) = v(k-1).
  static GeneralizedTuple Point(const std::vector<Rational>& values);

  int arity() const { return arity_; }
  /// The atom list: read-only random-access range of DenseAtoms. Inline for
  /// small lists, a borrowed span into a relation's AtomArena for stored
  /// tuples (see AtomVec).
  const AtomVec& atoms() const { return atoms_; }
  bool is_true() const { return atoms_.empty(); }

  /// Appends a conjunct. Variable indices must be < arity.
  void AddAtom(DenseAtom atom);

  /// Whether the conjunction has a solution in Q^arity.
  bool IsSatisfiable() const;

  /// Sound entailment test: every solution of this tuple satisfies `atom`.
  bool Entails(const DenseAtom& atom) const;

  /// Sound subsumption: solutions(*this) is a subset of solutions(other).
  /// (Checks that this tuple's closure entails each atom of `other`.)
  bool EntailsTuple(const GeneralizedTuple& other) const;

  /// Path-consistency closure normal form: the full set of informative
  /// pairwise relations, sorted. Requires IsSatisfiable(). Two tuples with
  /// equal canonical forms are semantically equal (the converse is checked
  /// through the cell decomposition).
  GeneralizedTuple Canonical() const;

  /// Canonical() when satisfiable, nullopt otherwise — computed on a fresh
  /// constraint network, never reading or populating the shared closure
  /// cache, so it is safe to call concurrently on tuples (or copies of
  /// tuples) visible to other threads. The returned tuple carries its own
  /// already-closed cache. Identical output to the cached path.
  std::optional<GeneralizedTuple> CanonicalIfSatisfiable() const;

  /// A subset of the atoms with the same meaning: greedily drops every atom
  /// entailed by the remaining ones. Keeps complements and printed output
  /// small (the closure normal form is quadratic in the node count).
  /// Deterministic in the *set* of input atoms: the list is oriented and
  /// sorted before the greedy back-scan, so reordering the input cannot
  /// change which of two mutually-entailing atoms survives (the sorted-first
  /// one does), and a non-tightest bound — entailed one-way by the tighter
  /// one — is always the side dropped. Requires IsSatisfiable().
  GeneralizedTuple Minimized() const;

  /// Point membership.
  bool Contains(const std::vector<Rational>& point) const;

  /// Distinct constants appearing in the atoms, ascending.
  std::vector<Rational> Constants() const;

  /// Conjunction of two tuples of the same arity (may be unsatisfiable).
  GeneralizedTuple Conjoin(const GeneralizedTuple& other) const;

  /// Rewrites variables: old index i becomes mapping[i] (each mapping value
  /// must be a valid index < new_arity). Used for column alignment,
  /// permutation and projection bookkeeping.
  GeneralizedTuple Reindexed(const std::vector<int>& mapping,
                             int new_arity) const;

  /// Reindexed() for a tuple already in canonical form, under an *injective*
  /// mapping. Column renaming is an isomorphism of the closed constraint
  /// network, so the result's canonical form is the mapped atom set
  /// re-oriented and re-sorted — no closure pass. Produces exactly
  /// Reindexed(...).CanonicalIfSatisfiable() (which always exists: renaming
  /// preserves satisfiability), with the result's signature warmed and its
  /// closure cache left lazy.
  GeneralizedTuple ReindexedCanonical(const std::vector<int>& mapping,
                                      int new_arity) const;

  /// A satisfying point, or nullopt when unsatisfiable.
  std::optional<std::vector<Rational>> SampleWitness() const;

  /// A fresh constraint network for this conjunction (closure not yet run).
  OrderGraph BuildGraph() const;

  /// The tuple's constraint network, built once and cached (the closure is
  /// computed lazily inside OrderGraph). Invalidated by AddAtom. Shared
  /// between copies of the tuple, which is safe because every cached-graph
  /// query first runs the idempotent closure.
  OrderGraph* CachedGraph() const;

  /// The tuple's constraint signature (per-column bounds + atom-list hash),
  /// built once and cached; invalidated by AddAtom, shared between copies.
  /// Stored tuples are immutable post-canonicalization, so for them the
  /// cache never invalidates. Like CachedGraph, this is a caching accessor:
  /// not safe to call concurrently on tuples shared across threads — warm it
  /// first (CanonicalIfSatisfiable warms the result's own cache).
  const TupleSignature& CachedSignature() const;

  /// "true" or "a and b and ...".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  /// Structural (syntactic) comparison of sorted atom lists.
  int Compare(const GeneralizedTuple& other) const;
  bool operator==(const GeneralizedTuple& o) const { return Compare(o) == 0; }
  bool operator<(const GeneralizedTuple& o) const { return Compare(o) < 0; }

  size_t Hash() const;

  /// Approximate heap footprint for guard memory accounting: the tuple
  /// object plus its atom array (atoms are counted whether they live
  /// inline, on the heap or in a shared arena — the budget bounds
  /// materialized constraint data). Cached graphs/signatures are excluded.
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(sizeof(GeneralizedTuple)) +
           static_cast<uint64_t>(atoms_.size()) * sizeof(DenseAtom);
  }

  /// Re-points a heap-backed atom list at `arena` (see AtomVec::PlaceIn);
  /// the relation that owns the arena calls this when storing the tuple.
  /// Returns the arena bytes newly allocated.
  uint64_t PlaceAtomsIn(const std::shared_ptr<AtomArena>& arena) {
    return atoms_.PlaceIn(arena);
  }

 private:
  int arity_;
  AtomVec atoms_;
  // Closure cache; see CachedGraph(). Copies share it until either side
  // mutates (AddAtom resets only its own pointer).
  mutable std::shared_ptr<OrderGraph> graph_;
  // Signature cache; see CachedSignature(). Same sharing discipline.
  mutable std::shared_ptr<const TupleSignature> signature_;
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_GENERALIZED_TUPLE_H_
