#ifndef DODB_CONSTRAINTS_PAGED_SOURCE_H_
#define DODB_CONSTRAINTS_PAGED_SOURCE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "constraints/generalized_tuple.h"
#include "core/status.h"

namespace dodb {

/// Out-of-core tuple payload of one relation, split into runs of
/// consecutive positions of the (sorted, canonical) tuple vector. The
/// relation's signatures, index and shards stay resident; only the atom
/// payloads live behind this interface, so joins and subsumption prune on
/// resident metadata and fetch a run only when a surviving candidate needs
/// its atoms.
///
/// Implementations live in src/storage (record stores + buffer pool); this
/// abstract face keeps constraints/ free of a storage dependency.
/// FetchRun must be thread-safe: shard-pair jobs fetch runs concurrently.
class PagedTupleSource {
 public:
  virtual ~PagedTupleSource() = default;

  virtual int arity() const = 0;
  virtual size_t tuple_count() const = 0;
  virtual size_t run_count() const = 0;
  /// First tuple position of run `run`; run r covers
  /// [RunBegin(r), RunBegin(r + 1)), with RunBegin(run_count()) defined as
  /// tuple_count(). Runs partition [0, tuple_count()) in order.
  virtual size_t RunBegin(size_t run) const = 0;
  /// Decodes run `run` in position order. Non-OK on I/O or checksum
  /// failure, or when a query guard trips inside the page cache.
  virtual Status FetchRun(size_t run,
                          std::vector<GeneralizedTuple>* out) const = 0;
  /// Encoded payload bytes across all runs — the relation's out-of-core
  /// working set (what the page cache would hold at 100% residency).
  virtual uint64_t approx_bytes() const = 0;

  size_t RunEnd(size_t run) const {
    return run + 1 < run_count() ? RunBegin(run + 1) : tuple_count();
  }
  /// The run containing tuple position `pos` (binary search over RunBegin).
  size_t RunOf(size_t pos) const;
};

/// Thread-safe bounded cache of decoded runs over a PagedTupleSource —
/// the decoded-side counterpart of the buffer pool's encoded-page cache.
/// Streaming operators hold one per input relation; capacity is a handful
/// of runs, so decoded memory stays O(runs in flight), not O(relation).
/// Runs are pinned by the returned shared_ptr, never invalidated under a
/// reader.
class PagedRunCache {
 public:
  explicit PagedRunCache(std::shared_ptr<const PagedTupleSource> source,
                         size_t max_runs = 32);

  const PagedTupleSource& source() const { return *source_; }

  /// The decoded run, fetched on miss and retained until evicted by
  /// recency; the shared_ptr keeps an evicted run alive for its holder.
  Result<std::shared_ptr<const std::vector<GeneralizedTuple>>> Run(
      size_t run);

  /// Copy of the tuple at global position `pos` (fetching its run).
  Result<GeneralizedTuple> TupleAt(size_t pos);

 private:
  const std::shared_ptr<const PagedTupleSource> source_;
  const size_t max_runs_;
  std::mutex mu_;
  std::map<size_t, std::shared_ptr<const std::vector<GeneralizedTuple>>>
      runs_;
  std::list<size_t> order_;  // front = oldest (FIFO eviction)
};

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_PAGED_SOURCE_H_
