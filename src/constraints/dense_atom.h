#ifndef DODB_CONSTRAINTS_DENSE_ATOM_H_
#define DODB_CONSTRAINTS_DENSE_ATOM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "constraints/term.h"

namespace dodb {

/// Comparison operator of an atomic dense-order constraint. The paper's base
/// language has {=, <=}; the remaining operators are definable abbreviations
/// and are carried explicitly for compact normal forms.
enum class RelOp { kLt, kLe, kEq, kNeq, kGe, kGt };

/// "<", "<=", "=", "!=", ">=", ">".
const char* RelOpSymbol(RelOp op);

/// Logical negation: not(t1 < t2) == t1 >= t2, not(=) == !=, etc.
RelOp NegateOp(RelOp op);

/// Mirror for swapped operands: (t1 < t2) == (t2 > t1).
RelOp FlipOp(RelOp op);

/// Whether `cmp` (a three-way comparison result, <0 / 0 / >0) satisfies `op`.
bool OpHolds(int cmp, RelOp op);

/// An atomic dense-order constraint `lhs op rhs` over terms of L.
///
/// A conjunction of DenseAtoms is a *generalized tuple* in the sense of
/// Kanellakis-Kuper-Revesz; see GeneralizedTuple.
class DenseAtom {
 public:
  /// The trivial atom x0 = x0 (arrays of atoms need a default; never
  /// observed — AtomVec only exposes its initialized prefix).
  DenseAtom() : op_(RelOp::kEq) {}

  DenseAtom(Term lhs, RelOp op, Term rhs) : lhs_(lhs), op_(op), rhs_(rhs) {}

  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  RelOp op() const { return op_; }

  /// The same constraint with operands in structural order (lhs <= rhs by
  /// Term ordering), flipping the operator as needed.
  DenseAtom Oriented() const;

  /// The negation of this atom (also a single atom: dense-order atoms are
  /// closed under negation).
  DenseAtom Negated() const { return DenseAtom(lhs_, NegateOp(op_), rhs_); }

  /// Evaluates the atom on a point assignment (index -> value).
  bool Holds(const std::vector<Rational>& point) const;

  /// Structural comparison (after orientation, equal atoms compare equal).
  int Compare(const DenseAtom& other) const;
  bool operator==(const DenseAtom& other) const { return Compare(other) == 0; }
  bool operator<(const DenseAtom& other) const { return Compare(other) < 0; }

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  size_t Hash() const;

 private:
  Term lhs_;
  RelOp op_;
  Term rhs_;
};

static_assert(sizeof(DenseAtom) <= 24,
              "DenseAtom stays a small trivially copyable record; atom "
              "arrays and arena spans rely on memcpy-able storage");

std::ostream& operator<<(std::ostream& os, const DenseAtom& atom);

}  // namespace dodb

#endif  // DODB_CONSTRAINTS_DENSE_ATOM_H_
