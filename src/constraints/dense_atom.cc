#include "constraints/dense_atom.h"

#include <ostream>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

const char* RelOpSymbol(RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return "<";
    case RelOp::kLe:
      return "<=";
    case RelOp::kEq:
      return "=";
    case RelOp::kNeq:
      return "!=";
    case RelOp::kGe:
      return ">=";
    case RelOp::kGt:
      return ">";
  }
  return "?";
}

RelOp NegateOp(RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return RelOp::kGe;
    case RelOp::kLe:
      return RelOp::kGt;
    case RelOp::kEq:
      return RelOp::kNeq;
    case RelOp::kNeq:
      return RelOp::kEq;
    case RelOp::kGe:
      return RelOp::kLt;
    case RelOp::kGt:
      return RelOp::kLe;
  }
  DODB_CHECK(false);
  return RelOp::kEq;
}

RelOp FlipOp(RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return RelOp::kGt;
    case RelOp::kLe:
      return RelOp::kGe;
    case RelOp::kEq:
      return RelOp::kEq;
    case RelOp::kNeq:
      return RelOp::kNeq;
    case RelOp::kGe:
      return RelOp::kLe;
    case RelOp::kGt:
      return RelOp::kLt;
  }
  DODB_CHECK(false);
  return RelOp::kEq;
}

bool OpHolds(int cmp, RelOp op) {
  switch (op) {
    case RelOp::kLt:
      return cmp < 0;
    case RelOp::kLe:
      return cmp <= 0;
    case RelOp::kEq:
      return cmp == 0;
    case RelOp::kNeq:
      return cmp != 0;
    case RelOp::kGe:
      return cmp >= 0;
    case RelOp::kGt:
      return cmp > 0;
  }
  DODB_CHECK(false);
  return false;
}

DenseAtom DenseAtom::Oriented() const {
  if (lhs_.Compare(rhs_) <= 0) return *this;
  return DenseAtom(rhs_, FlipOp(op_), lhs_);
}

namespace {
Rational TermValue(const Term& term, const std::vector<Rational>& point) {
  if (term.is_const()) return term.constant();
  DODB_CHECK_MSG(term.var() < static_cast<int>(point.size()),
                 "point too short for term variable");
  return point[term.var()];
}
}  // namespace

bool DenseAtom::Holds(const std::vector<Rational>& point) const {
  int cmp = TermValue(lhs_, point).Compare(TermValue(rhs_, point));
  return OpHolds(cmp, op_);
}

int DenseAtom::Compare(const DenseAtom& other) const {
  // Compares the Oriented() forms without materializing them (this runs in
  // every atom sort and tuple comparison; an oriented copy would deep-copy
  // both terms' rationals).
  const bool flip_a = lhs_.Compare(rhs_) > 0;
  const bool flip_b = other.lhs_.Compare(other.rhs_) > 0;
  const Term& a_lhs = flip_a ? rhs_ : lhs_;
  const Term& a_rhs = flip_a ? lhs_ : rhs_;
  const Term& b_lhs = flip_b ? other.rhs_ : other.lhs_;
  const Term& b_rhs = flip_b ? other.lhs_ : other.rhs_;
  int cmp = a_lhs.Compare(b_lhs);
  if (cmp != 0) return cmp;
  cmp = a_rhs.Compare(b_rhs);
  if (cmp != 0) return cmp;
  const RelOp a_op = flip_a ? FlipOp(op_) : op_;
  const RelOp b_op = flip_b ? FlipOp(other.op_) : other.op_;
  if (a_op != b_op) {
    return static_cast<int>(a_op) < static_cast<int>(b_op) ? -1 : 1;
  }
  return 0;
}

std::string DenseAtom::ToString(const std::vector<std::string>* names) const {
  return StrCat(lhs_.ToString(names), " ", RelOpSymbol(op_), " ",
                rhs_.ToString(names));
}

size_t DenseAtom::Hash() const {
  // Hash of the Oriented() form without materializing it (an oriented copy
  // would deep-copy both terms' rationals; this runs per atom in every
  // tuple-signature computation).
  const bool flip = lhs_.Compare(rhs_) > 0;
  const Term& l = flip ? rhs_ : lhs_;
  const Term& r = flip ? lhs_ : rhs_;
  const RelOp op = flip ? FlipOp(op_) : op_;
  size_t h = l.Hash();
  h ^= static_cast<size_t>(op) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= r.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::ostream& operator<<(std::ostream& os, const DenseAtom& atom) {
  return os << atom.ToString();
}

}  // namespace dodb
