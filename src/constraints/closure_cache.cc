#include "constraints/closure_cache.h"

#include <utility>

#include "constraints/eval_counters.h"
#include "core/query_guard.h"

namespace dodb {

namespace {

thread_local ClosureCache* tls_closure_cache = nullptr;

// splitmix64 finalizer: diffuses every input bit across the word, so the two
// accumulation streams below stay independent even for structurally similar
// atom lists.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Fingerprint {
  uint64_t lo;
  uint64_t hi;
};

// Order-sensitive 128-bit fingerprint of (canonical-form mode, arity, atom
// list): two polynomial accumulations with distinct odd multipliers over
// independently re-mixed per-atom hashes. The mode bit is part of the key
// because the cached value — the canonical form — is a different string
// under minimal vs full emission, and one cache may serve scopes of both
// modes (the differential tests do exactly that).
Fingerprint FingerprintOf(const GeneralizedTuple& tuple) {
  Fingerprint fp;
  fp.lo = Mix64(static_cast<uint64_t>(tuple.arity()) * 2 +
                (MinimalCanonicalEnabled() ? 1 : 0));
  fp.hi = Mix64(fp.lo ^ 0x6a09e667f3bcc909ULL);
  for (const DenseAtom& atom : tuple.atoms()) {
    const uint64_t h = static_cast<uint64_t>(atom.Hash());
    fp.lo = fp.lo * 0x100000001b3ULL ^ Mix64(h);
    fp.hi = fp.hi * 0xc6a4a7935bd1e995ULL ^ Mix64(h ^ 0x2545f4914f6cdd1dULL);
  }
  return fp;
}

}  // namespace

std::optional<GeneralizedTuple> ClosureCache::CanonicalIfSatisfiable(
    GeneralizedTuple tuple) {
  const Fingerprint fp = FingerprintOf(tuple);
  Stripe& stripe = stripes_[fp.lo % kStripes];
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.entries.find(fp.lo);
    if (it != stripe.entries.end()) {
      for (const Entry& entry : it->second) {
        if (entry.hi == fp.hi) {
          EvalCounters::AddClosureMemoHits(1);
          return entry.canonical;
        }
      }
    }
  }
  // Miss: run the closure outside the lock (it dominates the cost), then
  // publish. A racing thread may have inserted the same key meanwhile; both
  // computed the same pure function, so keeping either entry is equivalent —
  // keep the first and drop ours.
  Entry entry;
  entry.hi = fp.hi;
  entry.canonical = tuple.CanonicalIfSatisfiable();
  std::optional<GeneralizedTuple> result = entry.canonical;
  // A query-guard trip aborts the closure sweep mid-propagation, making
  // CanonicalIfSatisfiable report nullopt for a tuple that may well be
  // satisfiable. Publishing that would poison the memo — under the Datalog
  // evaluator it outlives the failed query — so a tripped run computes
  // without writing back.
  QueryGuard* guard = CurrentQueryGuard();
  if (guard != nullptr && guard->tripped()) return result;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    std::vector<Entry>& bucket = stripe.entries[fp.lo];
    bool present = false;
    for (const Entry& existing : bucket) {
      if (existing.hi == entry.hi) {
        present = true;
        break;
      }
    }
    if (!present) bucket.push_back(std::move(entry));
  }
  return result;
}

size_t ClosureCache::size() const {
  size_t total = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [hash, bucket] : stripe.entries) total += bucket.size();
  }
  return total;
}

ClosureCache* CurrentClosureCache() { return tls_closure_cache; }

ClosureCacheScope::ClosureCacheScope(ClosureCache* cache)
    : prev_(tls_closure_cache) {
  tls_closure_cache = cache;
}

ClosureCacheScope::~ClosureCacheScope() { tls_closure_cache = prev_; }

}  // namespace dodb
