#include "constraints/tuple_signature.h"

#include <algorithm>

namespace dodb {

void ColumnBound::TightenLower(const Rational& value, bool open) {
  if (!has_lower) {
    has_lower = true;
    lower = value;
    lower_open = open;
    return;
  }
  int cmp = value.Compare(lower);
  if (cmp > 0) {
    lower = value;
    lower_open = open;
  } else if (cmp == 0 && open) {
    lower_open = true;
  }
}

void ColumnBound::TightenUpper(const Rational& value, bool open) {
  if (!has_upper) {
    has_upper = true;
    upper = value;
    upper_open = open;
    return;
  }
  int cmp = value.Compare(upper);
  if (cmp < 0) {
    upper = value;
    upper_open = open;
  } else if (cmp == 0 && open) {
    upper_open = true;
  }
}

namespace {

// max(a.lower, b.lower) <(=) min(a.upper, b.upper), over a dense order: a
// shared value exists unless an upper sits below a lower, or touches it with
// at least one side open.
bool LowerFitsUnderUpper(const ColumnBound& lo, const ColumnBound& hi) {
  if (!lo.has_lower || !hi.has_upper) return true;
  int cmp = lo.lower.Compare(hi.upper);
  if (cmp > 0) return false;
  if (cmp == 0 && (lo.lower_open || hi.upper_open)) return false;
  return true;
}

}  // namespace

bool BoundsMayOverlap(const ColumnBound& a, const ColumnBound& b) {
  return LowerFitsUnderUpper(a, b) && LowerFitsUnderUpper(b, a);
}

void WidenToCover(ColumnBound& cover, const ColumnBound& add) {
  if (cover.has_lower) {
    if (!add.has_lower) {
      cover.has_lower = false;
      cover.lower_open = false;
    } else {
      int cmp = add.lower.Compare(cover.lower);
      if (cmp < 0) {
        cover.lower = add.lower;
        cover.lower_open = add.lower_open;
      } else if (cmp == 0) {
        cover.lower_open = cover.lower_open && add.lower_open;
      }
    }
  }
  if (cover.has_upper) {
    if (!add.has_upper) {
      cover.has_upper = false;
      cover.upper_open = false;
    } else {
      int cmp = add.upper.Compare(cover.upper);
      if (cmp > 0) {
        cover.upper = add.upper;
        cover.upper_open = add.upper_open;
      } else if (cmp == 0) {
        cover.upper_open = cover.upper_open && add.upper_open;
      }
    }
  }
}

int CompareLowerBounds(const ColumnBound& a, const ColumnBound& b) {
  if (!a.has_lower || !b.has_lower) {
    if (a.has_lower == b.has_lower) return 0;
    return a.has_lower ? 1 : -1;
  }
  int cmp = a.lower.Compare(b.lower);
  if (cmp != 0) return cmp;
  if (a.lower_open == b.lower_open) return 0;
  return a.lower_open ? 1 : -1;
}

std::optional<std::pair<int, ColumnBound>> BoundOfAtom(const DenseAtom& atom) {
  // Orient so a var-constant atom reads  x op c  (Term ordering puts
  // variables before constants, so Oriented() guarantees this shape).
  DenseAtom oriented = atom.Oriented();
  if (!oriented.lhs().is_var() || !oriented.rhs().is_const()) {
    return std::nullopt;
  }
  int column = oriented.lhs().var();
  const Rational& value = oriented.rhs().constant();
  ColumnBound bound;
  switch (oriented.op()) {
    case RelOp::kLt:
      bound.TightenUpper(value, /*open=*/true);
      break;
    case RelOp::kLe:
      bound.TightenUpper(value, /*open=*/false);
      break;
    case RelOp::kEq:
      bound.TightenLower(value, /*open=*/false);
      bound.TightenUpper(value, /*open=*/false);
      break;
    case RelOp::kGe:
      bound.TightenLower(value, /*open=*/false);
      break;
    case RelOp::kGt:
      bound.TightenLower(value, /*open=*/true);
      break;
    case RelOp::kNeq:
      return std::nullopt;  // punches a point out; no interval information
  }
  return std::make_pair(column, std::move(bound));
}

std::vector<ColumnBound> ExtractColumnBounds(int arity, const DenseAtom* atoms,
                                             size_t count) {
  std::vector<ColumnBound> columns(arity);
  for (size_t i = 0; i < count; ++i) {
    std::optional<std::pair<int, ColumnBound>> contribution =
        BoundOfAtom(atoms[i]);
    if (!contribution.has_value()) continue;
    ColumnBound& column = columns[contribution->first];
    const ColumnBound& bound = contribution->second;
    if (bound.has_lower) column.TightenLower(bound.lower, bound.lower_open);
    if (bound.has_upper) column.TightenUpper(bound.upper, bound.upper_open);
  }
  return columns;
}

bool SignaturesMayOverlap(const TupleSignature& a, const TupleSignature& b) {
  size_t n = std::min(a.columns.size(), b.columns.size());
  for (size_t i = 0; i < n; ++i) {
    if (!BoundsMayOverlap(a.columns[i], b.columns[i])) return false;
  }
  return true;
}

}  // namespace dodb
