#include "constraints/paged_source.h"

#include <algorithm>
#include <utility>

#include "constraints/eval_counters.h"
#include "core/check.h"

namespace dodb {

size_t PagedTupleSource::RunOf(size_t pos) const {
  DODB_CHECK_MSG(pos < tuple_count(), "RunOf position out of range");
  // Largest run with RunBegin(run) <= pos.
  size_t lo = 0, hi = run_count();
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (RunBegin(mid) <= pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PagedRunCache::PagedRunCache(std::shared_ptr<const PagedTupleSource> source,
                             size_t max_runs)
    : source_(std::move(source)), max_runs_(std::max<size_t>(max_runs, 1)) {
  DODB_CHECK_MSG(source_ != nullptr, "PagedRunCache over a null source");
}

Result<std::shared_ptr<const std::vector<GeneralizedTuple>>>
PagedRunCache::Run(size_t run) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = runs_.find(run);
    if (it != runs_.end()) return it->second;
  }
  // Fetch outside the lock so concurrent shard jobs decode different runs
  // in parallel; a racing double-fetch of the same run is benign (the loser
  // adopts the winner's copy).
  auto decoded = std::make_shared<std::vector<GeneralizedTuple>>();
  DODB_RETURN_IF_ERROR(source_->FetchRun(run, decoded.get()));
  // Freshly decoded tuples have cold signature/graph caches; stored
  // resident tuples have warm ones (insertion and canonicalization fill
  // them). Warm before publishing: cached accessors are not safe to call
  // concurrently on shared tuples, and a published run is shared with
  // every thread that hits this cache.
  for (GeneralizedTuple& tuple : *decoded) {
    tuple.CachedSignature();
    tuple.CachedGraph();
  }
  std::shared_ptr<const std::vector<GeneralizedTuple>> shared =
      std::move(decoded);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(run);
  if (it != runs_.end()) return it->second;
  while (runs_.size() >= max_runs_) {
    runs_.erase(order_.front());
    order_.pop_front();
  }
  runs_.emplace(run, shared);
  order_.push_back(run);
  return shared;
}

Result<GeneralizedTuple> PagedRunCache::TupleAt(size_t pos) {
  size_t run = source_->RunOf(pos);
  auto tuples = Run(run);
  if (!tuples.ok()) return tuples.status();
  size_t offset = pos - source_->RunBegin(run);
  DODB_CHECK_MSG(offset < tuples.value()->size(),
                 "paged run shorter than its directory entry");
  return (*tuples.value())[offset];
}

}  // namespace dodb
