#ifndef DODB_LINEAR_LINEAR_SYSTEM_H_
#define DODB_LINEAR_LINEAR_SYSTEM_H_

#include <string>
#include <vector>

#include "linear/linear_atom.h"

namespace dodb {

/// A conjunction of linear atoms over Q^arity — the linear-constraint
/// analogue of a generalized tuple. Because the atom language {<, <=, =} is
/// closed under Fourier-Motzkin elimination, `exists x . system` is again a
/// single system (unlike the dense-order case with inequations).
class LinearSystem {
 public:
  explicit LinearSystem(int arity);
  LinearSystem(int arity, std::vector<LinearAtom> atoms);

  int arity() const { return arity_; }
  const std::vector<LinearAtom>& atoms() const { return atoms_; }
  bool is_true() const { return atoms_.empty(); }

  void AddAtom(LinearAtom atom);

  /// Decided exactly by Fourier-Motzkin elimination.
  bool IsSatisfiable() const;

  bool Contains(const std::vector<Rational>& point) const;

  LinearSystem Conjoin(const LinearSystem& other) const;
  LinearSystem Reindexed(const std::vector<int>& mapping,
                         int new_arity) const;

  /// Fourier-Motzkin: `exists x_var . *this`, arity preserved (x_var no
  /// longer occurs). Equations are eliminated by substitution; inequalities
  /// by pairing lower and upper bounds with exact rational arithmetic.
  LinearSystem EliminatedVariable(int var) const;

  /// Sorted, deduplicated atom list (ground truths dropped). Requires
  /// IsSatisfiable(). Redundant-but-nontrivial atoms are kept: full
  /// redundancy elimination would need an LP solver.
  LinearSystem Canonical() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  int Compare(const LinearSystem& other) const;
  bool operator==(const LinearSystem& o) const { return Compare(o) == 0; }
  bool operator<(const LinearSystem& o) const { return Compare(o) < 0; }
  size_t Hash() const;

 private:
  int arity_;
  std::vector<LinearAtom> atoms_;
};

}  // namespace dodb

#endif  // DODB_LINEAR_LINEAR_SYSTEM_H_
