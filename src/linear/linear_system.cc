#include "linear/linear_system.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

LinearSystem::LinearSystem(int arity) : arity_(arity) {
  DODB_CHECK(arity >= 0);
}

LinearSystem::LinearSystem(int arity, std::vector<LinearAtom> atoms)
    : arity_(arity), atoms_(std::move(atoms)) {
  DODB_CHECK(arity >= 0);
  for (const LinearAtom& atom : atoms_) {
    DODB_CHECK_MSG(atom.expr().MaxVar() < arity_,
                   "atom variable outside system arity");
  }
}

void LinearSystem::AddAtom(LinearAtom atom) {
  DODB_CHECK_MSG(atom.expr().MaxVar() < arity_,
                 "atom variable outside system arity");
  atoms_.push_back(std::move(atom));
}

bool LinearSystem::Contains(const std::vector<Rational>& point) const {
  DODB_CHECK(static_cast<int>(point.size()) == arity_);
  for (const LinearAtom& atom : atoms_) {
    if (!atom.Holds(point)) return false;
  }
  return true;
}

LinearSystem LinearSystem::Conjoin(const LinearSystem& other) const {
  DODB_CHECK_MSG(arity_ == other.arity_, "Conjoin arity mismatch");
  LinearSystem out = *this;
  for (const LinearAtom& atom : other.atoms_) out.AddAtom(atom);
  return out;
}

LinearSystem LinearSystem::Reindexed(const std::vector<int>& mapping,
                                     int new_arity) const {
  LinearSystem out(new_arity);
  for (const LinearAtom& atom : atoms_) {
    out.AddAtom(atom.Reindexed(mapping));
  }
  return out;
}

LinearSystem LinearSystem::EliminatedVariable(int var) const {
  DODB_CHECK(var >= 0 && var < arity_);
  // 1. Equation with a nonzero coefficient on x_var: solve and substitute.
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const LinearAtom& atom = atoms_[i];
    if (atom.op() != LinOp::kEq || !atom.Uses(var)) continue;
    Rational a = atom.expr().coeff(var);
    // x = -(expr - a*x) / a.
    LinearExpr rest =
        atom.expr().Minus(LinearExpr::Var(var).ScaledBy(a));
    LinearExpr solution = rest.ScaledBy(Rational(-1) / a);
    LinearSystem out(arity_);
    for (size_t j = 0; j < atoms_.size(); ++j) {
      if (j == i) continue;
      out.AddAtom(atoms_[j].Substituted(var, solution));
    }
    return out;
  }
  // 2. Fourier-Motzkin on inequalities.
  LinearSystem out(arity_);
  struct Bound {
    LinearExpr expr;  // full atom expression (contains x_var)
    Rational coeff;
    bool strict;
  };
  std::vector<Bound> uppers;  // coeff > 0
  std::vector<Bound> lowers;  // coeff < 0
  for (const LinearAtom& atom : atoms_) {
    if (!atom.Uses(var)) {
      out.AddAtom(atom);
      continue;
    }
    Bound bound{atom.expr(), atom.expr().coeff(var),
                atom.op() == LinOp::kLt};
    if (bound.coeff.is_negative()) {
      lowers.push_back(std::move(bound));
    } else {
      uppers.push_back(std::move(bound));
    }
  }
  // Imbert-style light pruning: normalization makes scaled duplicates
  // collide, so deduplicate the combined atoms (otherwise iterated FM
  // squares the atom count far faster than necessary).
  std::set<LinearAtom> seen;
  for (const LinearAtom& atom : out.atoms()) seen.insert(atom);
  for (const Bound& lo : lowers) {
    for (const Bound& up : uppers) {
      // lo.expr has coeff a < 0, up.expr has coeff b > 0:
      // b * lo.expr + (-a) * up.expr has no x_var and must be (<|<=) 0.
      LinearExpr combined = lo.expr.ScaledBy(up.coeff).Plus(
          up.expr.ScaledBy(lo.coeff.Abs()));
      LinOp op = (lo.strict || up.strict) ? LinOp::kLt : LinOp::kLe;
      LinearAtom atom(std::move(combined), op);
      if (atom.expr().is_constant()) {
        if (!atom.GroundHolds()) {
          // Unsatisfiable ground combination: encode as 1 <= 0.
          LinearSystem contradiction(arity_);
          contradiction.AddAtom(
              LinearAtom(LinearExpr::Const(Rational(1)), LinOp::kLe));
          return contradiction;
        }
        continue;
      }
      if (seen.insert(atom).second) out.AddAtom(std::move(atom));
    }
  }
  return out;
}

bool LinearSystem::IsSatisfiable() const {
  LinearSystem current = *this;
  for (int var = 0; var < arity_; ++var) {
    current = current.EliminatedVariable(var);
  }
  for (const LinearAtom& atom : current.atoms_) {
    DODB_CHECK(atom.expr().is_constant());
    if (!atom.GroundHolds()) return false;
  }
  return true;
}

LinearSystem LinearSystem::Canonical() const {
  DODB_CHECK_MSG(IsSatisfiable(), "Canonical() on unsatisfiable system");
  std::vector<LinearAtom> kept;
  kept.reserve(atoms_.size());
  for (const LinearAtom& atom : atoms_) {
    if (atom.expr().is_constant()) continue;  // ground truths
    kept.push_back(atom);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return LinearSystem(arity_, std::move(kept));
}

std::string LinearSystem::ToString(
    const std::vector<std::string>* names) const {
  if (atoms_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const LinearAtom& atom : atoms_) parts.push_back(atom.ToString(names));
  return StrJoin(parts, " and ");
}

int LinearSystem::Compare(const LinearSystem& other) const {
  if (arity_ != other.arity_) return arity_ < other.arity_ ? -1 : 1;
  size_t n = std::min(atoms_.size(), other.atoms_.size());
  for (size_t i = 0; i < n; ++i) {
    int cmp = atoms_[i].Compare(other.atoms_[i]);
    if (cmp != 0) return cmp;
  }
  if (atoms_.size() != other.atoms_.size()) {
    return atoms_.size() < other.atoms_.size() ? -1 : 1;
  }
  return 0;
}

size_t LinearSystem::Hash() const {
  size_t h = static_cast<size_t>(arity_) * 0x517cc1b727220a95ull;
  for (const LinearAtom& atom : atoms_) {
    h ^= atom.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace dodb
