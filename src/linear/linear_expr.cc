#include "linear/linear_expr.h"

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

LinearExpr LinearExpr::Var(int index) {
  DODB_CHECK(index >= 0);
  LinearExpr e;
  e.coeffs_[index] = Rational(1);
  return e;
}

LinearExpr LinearExpr::Const(Rational value) {
  LinearExpr e;
  e.constant_ = std::move(value);
  return e;
}

Rational LinearExpr::coeff(int index) const {
  auto it = coeffs_.find(index);
  if (it == coeffs_.end()) return Rational(0);
  return it->second;
}

LinearExpr LinearExpr::Plus(const LinearExpr& other) const {
  LinearExpr out = *this;
  out.constant_ += other.constant_;
  for (const auto& [index, coeff] : other.coeffs_) {
    Rational& slot = out.coeffs_[index];
    slot += coeff;
    if (slot.is_zero()) out.coeffs_.erase(index);
  }
  return out;
}

LinearExpr LinearExpr::Minus(const LinearExpr& other) const {
  return Plus(other.Negated());
}

LinearExpr LinearExpr::Negated() const { return ScaledBy(Rational(-1)); }

LinearExpr LinearExpr::ScaledBy(const Rational& factor) const {
  LinearExpr out;
  if (factor.is_zero()) return out;
  out.constant_ = constant_ * factor;
  for (const auto& [index, coeff] : coeffs_) {
    out.coeffs_[index] = coeff * factor;
  }
  return out;
}

LinearExpr LinearExpr::Substituted(int index,
                                   const LinearExpr& replacement) const {
  auto it = coeffs_.find(index);
  if (it == coeffs_.end()) return *this;
  Rational factor = it->second;
  LinearExpr out = *this;
  out.coeffs_.erase(index);
  return out.Plus(replacement.ScaledBy(factor));
}

LinearExpr LinearExpr::Reindexed(const std::vector<int>& mapping) const {
  LinearExpr out;
  out.constant_ = constant_;
  for (const auto& [index, coeff] : coeffs_) {
    DODB_CHECK_MSG(index < static_cast<int>(mapping.size()),
                   "Reindexed: column outside mapping");
    int target = mapping[index];
    DODB_CHECK(target >= 0);
    Rational& slot = out.coeffs_[target];
    slot += coeff;
    if (slot.is_zero()) out.coeffs_.erase(target);
  }
  return out;
}

Rational LinearExpr::Eval(const std::vector<Rational>& point) const {
  Rational value = constant_;
  for (const auto& [index, coeff] : coeffs_) {
    DODB_CHECK_MSG(index < static_cast<int>(point.size()),
                   "point too short for linear expression");
    value += coeff * point[index];
  }
  return value;
}

int LinearExpr::MaxVar() const {
  if (coeffs_.empty()) return -1;
  return coeffs_.rbegin()->first;
}

std::string LinearExpr::ToString(
    const std::vector<std::string>* names) const {
  auto var_name = [names](int index) {
    if (names != nullptr && index < static_cast<int>(names->size())) {
      return (*names)[index];
    }
    return StrCat("x", index);
  };
  if (coeffs_.empty()) return constant_.ToString();
  std::string out;
  bool first = true;
  for (const auto& [index, coeff] : coeffs_) {
    if (first) {
      if (coeff == Rational(1)) {
        out = var_name(index);
      } else if (coeff == Rational(-1)) {
        out = StrCat("-", var_name(index));
      } else {
        out = StrCat(coeff.ToString(), "*", var_name(index));
      }
      first = false;
      continue;
    }
    Rational abs = coeff.Abs();
    const char* sign = coeff.is_negative() ? " - " : " + ";
    if (abs == Rational(1)) {
      out += StrCat(sign, var_name(index));
    } else {
      out += StrCat(sign, abs.ToString(), "*", var_name(index));
    }
  }
  if (!constant_.is_zero()) {
    out += StrCat(constant_.is_negative() ? " - " : " + ",
                  constant_.Abs().ToString());
  }
  return out;
}

int LinearExpr::Compare(const LinearExpr& other) const {
  int cmp = constant_.Compare(other.constant_);
  if (cmp != 0) return cmp;
  auto it = coeffs_.begin();
  auto jt = other.coeffs_.begin();
  while (it != coeffs_.end() && jt != other.coeffs_.end()) {
    if (it->first != jt->first) return it->first < jt->first ? -1 : 1;
    cmp = it->second.Compare(jt->second);
    if (cmp != 0) return cmp;
    ++it;
    ++jt;
  }
  if (it != coeffs_.end()) return 1;
  if (jt != other.coeffs_.end()) return -1;
  return 0;
}

size_t LinearExpr::Hash() const {
  size_t h = constant_.Hash();
  for (const auto& [index, coeff] : coeffs_) {
    h ^= static_cast<size_t>(index) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    h ^= coeff.Hash() + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace dodb
