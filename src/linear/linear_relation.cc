#include "linear/linear_relation.h"

#include <algorithm>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

LinearRelation::LinearRelation(int arity) : arity_(arity) {
  DODB_CHECK(arity >= 0);
}

LinearRelation LinearRelation::True(int arity) {
  LinearRelation rel(arity);
  rel.AddSystem(LinearSystem(arity));
  return rel;
}

LinearRelation LinearRelation::False(int arity) {
  return LinearRelation(arity);
}

namespace {

LinearExpr TermToLinear(const Term& term) {
  if (term.is_var()) return LinearExpr::Var(term.var());
  return LinearExpr::Const(term.constant());
}

// lhs op rhs as linear atoms; a dense != yields two alternative atoms.
struct LoweredAtom {
  std::vector<LinearAtom> alternatives;  // disjunction
};

LoweredAtom LowerDenseAtom(const DenseAtom& atom) {
  LinearExpr diff = TermToLinear(atom.lhs()).Minus(TermToLinear(atom.rhs()));
  switch (atom.op()) {
    case RelOp::kLt:
      return {{LinearAtom(diff, LinOp::kLt)}};
    case RelOp::kLe:
      return {{LinearAtom(diff, LinOp::kLe)}};
    case RelOp::kEq:
      return {{LinearAtom(diff, LinOp::kEq)}};
    case RelOp::kGe:
      return {{LinearAtom(diff.Negated(), LinOp::kLe)}};
    case RelOp::kGt:
      return {{LinearAtom(diff.Negated(), LinOp::kLt)}};
    case RelOp::kNeq:
      return {{LinearAtom(diff, LinOp::kLt),
               LinearAtom(diff.Negated(), LinOp::kLt)}};
  }
  DODB_CHECK(false);
  return {};
}

}  // namespace

LinearRelation LinearRelation::FromGeneralized(
    const GeneralizedRelation& rel) {
  LinearRelation out(rel.arity());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    // Expand the (rare) inequations into a small DNF.
    std::vector<LinearSystem> partial = {LinearSystem(rel.arity())};
    GeneralizedTuple minimized = tuple.Minimized();
    for (const DenseAtom& atom : minimized.atoms()) {
      LoweredAtom lowered = LowerDenseAtom(atom);
      if (lowered.alternatives.size() == 1) {
        for (LinearSystem& system : partial) {
          system.AddAtom(lowered.alternatives[0]);
        }
        continue;
      }
      std::vector<LinearSystem> next;
      next.reserve(partial.size() * lowered.alternatives.size());
      for (const LinearSystem& system : partial) {
        for (const LinearAtom& alt : lowered.alternatives) {
          LinearSystem branch = system;
          branch.AddAtom(alt);
          next.push_back(std::move(branch));
        }
      }
      partial = std::move(next);
    }
    for (LinearSystem& system : partial) out.AddSystem(std::move(system));
  }
  return out;
}

void LinearRelation::AddSystem(LinearSystem system) {
  DODB_CHECK_MSG(system.arity() == arity_, "AddSystem arity mismatch");
  if (!system.IsSatisfiable()) return;
  LinearSystem canonical = system.Canonical();
  auto pos = std::lower_bound(systems_.begin(), systems_.end(), canonical);
  if (pos != systems_.end() && *pos == canonical) return;
  systems_.insert(pos, std::move(canonical));
}

bool LinearRelation::Contains(const std::vector<Rational>& point) const {
  for (const LinearSystem& system : systems_) {
    if (system.Contains(point)) return true;
  }
  return false;
}

std::string LinearRelation::ToString(
    const std::vector<std::string>* names) const {
  if (systems_.empty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(systems_.size());
  for (const LinearSystem& system : systems_) {
    parts.push_back(system.ToString(names));
  }
  return StrCat("{ ", StrJoin(parts, " ; "), " }");
}

namespace linear_algebra {

LinearRelation Union(const LinearRelation& a, const LinearRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  LinearRelation out = a;
  for (const LinearSystem& system : b.systems()) out.AddSystem(system);
  return out;
}

LinearRelation Intersect(const LinearRelation& a, const LinearRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Intersect arity mismatch");
  LinearRelation out(a.arity());
  for (const LinearSystem& sa : a.systems()) {
    for (const LinearSystem& sb : b.systems()) {
      out.AddSystem(sa.Conjoin(sb));
    }
  }
  return out;
}

LinearRelation Complement(const LinearRelation& rel) {
  LinearRelation acc = LinearRelation::True(rel.arity());
  for (const LinearSystem& system : rel.systems()) {
    if (system.is_true()) return LinearRelation(rel.arity());
    LinearRelation next(rel.arity());
    for (const LinearSystem& partial : acc.systems()) {
      for (const LinearAtom& atom : system.atoms()) {
        for (const LinearAtom& negated : atom.NegatedDisjuncts()) {
          LinearSystem candidate = partial;
          candidate.AddAtom(negated);
          next.AddSystem(std::move(candidate));
        }
      }
    }
    acc = std::move(next);
    if (acc.IsEmpty()) break;
  }
  return acc;
}

LinearRelation Rename(const LinearRelation& rel,
                      const std::vector<int>& mapping, int new_arity) {
  LinearRelation out(new_arity);
  for (const LinearSystem& system : rel.systems()) {
    out.AddSystem(system.Reindexed(mapping, new_arity));
  }
  return out;
}

LinearRelation ProjectColumns(const LinearRelation& rel,
                              const std::vector<int>& keep) {
  std::vector<bool> kept(rel.arity(), false);
  for (int column : keep) {
    DODB_CHECK(column >= 0 && column < rel.arity());
    DODB_CHECK_MSG(!kept[column], "duplicate column in projection");
    kept[column] = true;
  }
  LinearRelation out(static_cast<int>(keep.size()));
  std::vector<int> mapping(rel.arity(), 0);
  for (size_t i = 0; i < keep.size(); ++i) {
    mapping[keep[i]] = static_cast<int>(i);
  }
  for (const LinearSystem& system : rel.systems()) {
    LinearSystem current = system;
    for (int column = 0; column < rel.arity(); ++column) {
      if (!kept[column]) current = current.EliminatedVariable(column);
    }
    out.AddSystem(current.Reindexed(mapping, static_cast<int>(keep.size())));
  }
  return out;
}

}  // namespace linear_algebra
}  // namespace dodb
