#ifndef DODB_LINEAR_LINEAR_ATOM_H_
#define DODB_LINEAR_LINEAR_ATOM_H_

#include <string>
#include <vector>

#include "linear/linear_expr.h"

namespace dodb {

/// Comparison of an atomic linear constraint `expr op 0`. Inequations
/// (expr != 0) are not representable as one atom; they are handled at the
/// relation level by splitting into (expr < 0) or (-expr < 0).
enum class LinOp { kLt, kLe, kEq };

const char* LinOpSymbol(LinOp op);

/// An atomic linear constraint in the canonical form `expr op 0`, normalized
/// so coefficients and constant are integers with gcd 1, and (for equations)
/// the leading coefficient is positive. Equal constraint sets therefore
/// compare equal syntactically.
class LinearAtom {
 public:
  LinearAtom(LinearExpr expr, LinOp op);

  const LinearExpr& expr() const { return expr_; }
  LinOp op() const { return op_; }

  bool Holds(const std::vector<Rational>& point) const;

  /// Whether the atom mentions x_index.
  bool Uses(int index) const;

  /// The negation, as a disjunction of atoms (one for inequalities, two for
  /// an equation).
  std::vector<LinearAtom> NegatedDisjuncts() const;

  LinearAtom Reindexed(const std::vector<int>& mapping) const;
  LinearAtom Substituted(int index, const LinearExpr& replacement) const;

  /// Ground truth value; requires expr().is_constant().
  bool GroundHolds() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  int Compare(const LinearAtom& other) const;
  bool operator==(const LinearAtom& o) const { return Compare(o) == 0; }
  bool operator<(const LinearAtom& o) const { return Compare(o) < 0; }
  size_t Hash() const;

 private:
  void Normalize();

  LinearExpr expr_;
  LinOp op_;
};

}  // namespace dodb

#endif  // DODB_LINEAR_LINEAR_ATOM_H_
