#ifndef DODB_LINEAR_LINEAR_RELATION_H_
#define DODB_LINEAR_LINEAR_RELATION_H_

#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "linear/linear_system.h"

namespace dodb {

/// A finitely representable relation over linear constraints: a finite
/// disjunction of LinearSystems (the FO+ analogue of GeneralizedRelation).
/// Stored systems are satisfiable, canonicalized and deduplicated
/// syntactically (semantic subsumption over polyhedra is not attempted).
class LinearRelation {
 public:
  explicit LinearRelation(int arity);

  static LinearRelation True(int arity);
  static LinearRelation False(int arity);

  /// Converts a dense-order relation: every dense atom is linear; dense
  /// inequations split each tuple into the < and > cases.
  static LinearRelation FromGeneralized(const GeneralizedRelation& rel);

  int arity() const { return arity_; }
  const std::vector<LinearSystem>& systems() const { return systems_; }
  bool IsEmpty() const { return systems_.empty(); }
  size_t system_count() const { return systems_.size(); }

  void AddSystem(LinearSystem system);

  bool Contains(const std::vector<Rational>& point) const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  int arity_;
  std::vector<LinearSystem> systems_;
};

/// Closed-form algebra over linear relations, mirroring algebra/ for the
/// dense case.
namespace linear_algebra {

LinearRelation Union(const LinearRelation& a, const LinearRelation& b);
LinearRelation Intersect(const LinearRelation& a, const LinearRelation& b);
/// Complement via incremental negation; not(e = 0) contributes two
/// disjuncts per atom.
LinearRelation Complement(const LinearRelation& rel);
LinearRelation Rename(const LinearRelation& rel,
                      const std::vector<int>& mapping, int new_arity);
/// Projection onto `keep` columns via Fourier-Motzkin.
LinearRelation ProjectColumns(const LinearRelation& rel,
                              const std::vector<int>& keep);

}  // namespace linear_algebra

}  // namespace dodb

#endif  // DODB_LINEAR_LINEAR_RELATION_H_
