#ifndef DODB_LINEAR_LINEAR_EXPR_H_
#define DODB_LINEAR_LINEAR_EXPR_H_

#include <map>
#include <string>
#include <vector>

#include "core/rational.h"

namespace dodb {

/// A linear expression sum_i coeff_i * x_i + constant over column indices,
/// with exact rational coefficients. The term language of FO+ (§4): dense
/// order plus addition.
class LinearExpr {
 public:
  /// The zero expression.
  LinearExpr() = default;

  static LinearExpr Var(int index);
  static LinearExpr Const(Rational value);

  const std::map<int, Rational>& coeffs() const { return coeffs_; }
  const Rational& constant() const { return constant_; }

  /// Coefficient of x_index (zero when absent).
  Rational coeff(int index) const;
  bool is_constant() const { return coeffs_.empty(); }

  LinearExpr Plus(const LinearExpr& other) const;
  LinearExpr Minus(const LinearExpr& other) const;
  LinearExpr Negated() const;
  LinearExpr ScaledBy(const Rational& factor) const;

  /// Substitutes `replacement` for x_index.
  LinearExpr Substituted(int index, const LinearExpr& replacement) const;

  /// Applies the column remapping old index -> mapping[old index].
  LinearExpr Reindexed(const std::vector<int>& mapping) const;

  /// Value at a point.
  Rational Eval(const std::vector<Rational>& point) const;

  /// Largest column index used, or -1 when constant.
  int MaxVar() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  int Compare(const LinearExpr& other) const;
  bool operator==(const LinearExpr& o) const { return Compare(o) == 0; }
  size_t Hash() const;

 private:
  std::map<int, Rational> coeffs_;
  Rational constant_;
};

}  // namespace dodb

#endif  // DODB_LINEAR_LINEAR_EXPR_H_
