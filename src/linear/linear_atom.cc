#include "linear/linear_atom.h"

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

const char* LinOpSymbol(LinOp op) {
  switch (op) {
    case LinOp::kLt:
      return "<";
    case LinOp::kLe:
      return "<=";
    case LinOp::kEq:
      return "=";
  }
  return "?";
}

LinearAtom::LinearAtom(LinearExpr expr, LinOp op)
    : expr_(std::move(expr)), op_(op) {
  Normalize();
}

void LinearAtom::Normalize() {
  // Scale by the positive rational that clears denominators and divides by
  // the gcd of all numerators; for equations additionally flip the sign so
  // the leading (lowest-index) coefficient is positive.
  BigInt den_lcm(1);
  auto fold_den = [&den_lcm](const Rational& r) {
    const BigInt& d = r.den();
    den_lcm = den_lcm / BigInt::Gcd(den_lcm, d) * d;
  };
  fold_den(expr_.constant());
  for (const auto& [index, coeff] : expr_.coeffs()) fold_den(coeff);
  LinearExpr scaled = expr_.ScaledBy(Rational(den_lcm));

  BigInt gcd(0);
  auto fold_gcd = [&gcd](const Rational& r) {
    gcd = BigInt::Gcd(gcd, r.num());
  };
  fold_gcd(scaled.constant());
  for (const auto& [index, coeff] : scaled.coeffs()) fold_gcd(coeff);
  if (!gcd.is_zero() && gcd != BigInt(1)) {
    scaled = scaled.ScaledBy(Rational(BigInt(1), gcd));
  }
  if (op_ == LinOp::kEq && !scaled.coeffs().empty() &&
      scaled.coeffs().begin()->second.is_negative()) {
    scaled = scaled.Negated();
  }
  expr_ = std::move(scaled);
}

bool LinearAtom::Holds(const std::vector<Rational>& point) const {
  Rational value = expr_.Eval(point);
  switch (op_) {
    case LinOp::kLt:
      return value < Rational(0);
    case LinOp::kLe:
      return value <= Rational(0);
    case LinOp::kEq:
      return value.is_zero();
  }
  DODB_CHECK(false);
  return false;
}

bool LinearAtom::Uses(int index) const {
  return expr_.coeffs().count(index) > 0;
}

std::vector<LinearAtom> LinearAtom::NegatedDisjuncts() const {
  switch (op_) {
    case LinOp::kLt:  // not(e < 0) == -e <= 0
      return {LinearAtom(expr_.Negated(), LinOp::kLe)};
    case LinOp::kLe:  // not(e <= 0) == -e < 0
      return {LinearAtom(expr_.Negated(), LinOp::kLt)};
    case LinOp::kEq:  // not(e = 0) == e < 0 or -e < 0
      return {LinearAtom(expr_, LinOp::kLt),
              LinearAtom(expr_.Negated(), LinOp::kLt)};
  }
  DODB_CHECK(false);
  return {};
}

LinearAtom LinearAtom::Reindexed(const std::vector<int>& mapping) const {
  return LinearAtom(expr_.Reindexed(mapping), op_);
}

LinearAtom LinearAtom::Substituted(int index,
                                   const LinearExpr& replacement) const {
  return LinearAtom(expr_.Substituted(index, replacement), op_);
}

bool LinearAtom::GroundHolds() const {
  DODB_CHECK_MSG(expr_.is_constant(), "GroundHolds on non-ground atom");
  switch (op_) {
    case LinOp::kLt:
      return expr_.constant() < Rational(0);
    case LinOp::kLe:
      return expr_.constant() <= Rational(0);
    case LinOp::kEq:
      return expr_.constant().is_zero();
  }
  DODB_CHECK(false);
  return false;
}

std::string LinearAtom::ToString(
    const std::vector<std::string>* names) const {
  return StrCat(expr_.ToString(names), " ", LinOpSymbol(op_), " 0");
}

int LinearAtom::Compare(const LinearAtom& other) const {
  if (op_ != other.op_) {
    return static_cast<int>(op_) < static_cast<int>(other.op_) ? -1 : 1;
  }
  return expr_.Compare(other.expr_);
}

size_t LinearAtom::Hash() const {
  return expr_.Hash() ^ (static_cast<size_t>(op_) * 0x9e3779b97f4a7c15ull);
}

}  // namespace dodb
