#include "server/protocol.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "core/str_util.h"
#include "storage/binary_format.h"

namespace dodb {
namespace server {

namespace {

using storage::ByteReader;
using storage::ByteWriter;

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(
    StatusCode::kTxnInvalidState);

Status DecodeStatusCode(uint8_t raw, StatusCode* code) {
  if (raw > kMaxStatusCode) {
    return Status::InvalidArgument(
        StrCat("wire status code ", raw, " out of range"));
  }
  *code = static_cast<StatusCode>(raw);
  return Status::Ok();
}

// Milliseconds left until `deadline`, clamped at 0; -1 for "wait forever".
int RemainingMs(bool forever,
                std::chrono::steady_clock::time_point deadline) {
  if (forever) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

// EINTR-safe poll for one event with an absolute deadline. Returns OK when
// the fd is ready, kDeadlineExceeded on timeout, kUnavailable on error.
Status PollFd(int fd, short events, int timeout_ms, const char* what) {
  const bool forever = timeout_ms <= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    struct pollfd pfd = {fd, events, 0};
    int remaining = RemainingMs(forever, deadline);
    int ready = ::poll(&pfd, 1, remaining);
    if (ready > 0) return Status::Ok();
    if (ready == 0) {
      return Status::DeadlineExceeded(StrCat(what, ": timed out"));
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(StrCat(what, ": poll: ", strerror(errno)));
  }
}

}  // namespace

std::vector<uint8_t> EncodeHello(const Hello& hello) {
  ByteWriter writer;
  for (char c : kServerMagic) writer.PutU8(static_cast<uint8_t>(c));
  writer.PutU32(hello.version);
  writer.PutU8(static_cast<uint8_t>(hello.code));
  writer.PutVarint(hello.session_id);
  writer.PutU8(hello.read_only ? 1 : 0);
  writer.PutString(hello.message);
  return writer.Take();
}

Result<Hello> DecodeHello(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  for (char expected : kServerMagic) {
    uint8_t c = 0;
    DODB_RETURN_IF_ERROR(reader.GetU8(&c));
    if (c != static_cast<uint8_t>(expected)) {
      return Status::InvalidArgument(
          "hello frame does not start with the DODBSRV1 magic — not a dodb "
          "server");
    }
  }
  Hello hello;
  DODB_RETURN_IF_ERROR(reader.GetU32(&hello.version));
  if (hello.version != kProtocolVersion) {
    return Status::Unsupported(StrCat("server speaks protocol version ",
                                      hello.version, ", this client speaks ",
                                      kProtocolVersion));
  }
  uint8_t code = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&code));
  DODB_RETURN_IF_ERROR(DecodeStatusCode(code, &hello.code));
  DODB_RETURN_IF_ERROR(reader.GetVarint(&hello.session_id));
  uint8_t read_only = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&read_only));
  hello.read_only = read_only != 0;
  DODB_RETURN_IF_ERROR(reader.GetString(&hello.message));
  return hello;
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  ByteWriter writer;
  writer.PutVarint(request.id);
  writer.PutU8(static_cast<uint8_t>(request.kind));
  writer.PutString(request.text);
  return writer.Take();
}

Result<Request> DecodeRequest(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  Request request;
  DODB_RETURN_IF_ERROR(reader.GetVarint(&request.id));
  uint8_t kind = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&kind));
  if (kind < static_cast<uint8_t>(RequestKind::kPing) ||
      kind > static_cast<uint8_t>(RequestKind::kAbort)) {
    return Status::InvalidArgument(
        StrCat("request kind ", kind, " out of range"));
  }
  request.kind = static_cast<RequestKind>(kind);
  DODB_RETURN_IF_ERROR(reader.GetString(&request.text));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  ByteWriter writer;
  writer.PutVarint(response.id);
  writer.PutU8(static_cast<uint8_t>(response.code));
  writer.PutString(response.message);
  writer.PutU8(response.has_relation ? 1 : 0);
  if (response.has_relation) {
    writer.PutVarint(response.head.size());
    for (const std::string& name : response.head) writer.PutString(name);
    writer.PutRelationPayload(response.relation);
  }
  return writer.Take();
}

Result<Response> DecodeResponse(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  Response response;
  DODB_RETURN_IF_ERROR(reader.GetVarint(&response.id));
  uint8_t code = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&code));
  DODB_RETURN_IF_ERROR(DecodeStatusCode(code, &response.code));
  DODB_RETURN_IF_ERROR(reader.GetString(&response.message));
  uint8_t has_relation = 0;
  DODB_RETURN_IF_ERROR(reader.GetU8(&has_relation));
  response.has_relation = has_relation != 0;
  if (response.has_relation) {
    uint64_t head_count = 0;
    DODB_RETURN_IF_ERROR(reader.GetVarint(&head_count));
    if (head_count > 64) {
      return Status::InvalidArgument(
          StrCat("response head has ", head_count, " columns"));
    }
    for (uint64_t i = 0; i < head_count; ++i) {
      std::string name;
      DODB_RETURN_IF_ERROR(reader.GetString(&name));
      response.head.push_back(std::move(name));
    }
    DODB_RETURN_IF_ERROR(reader.GetRelationPayload(&response.relation));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after response");
  }
  return response;
}

Result<FramePayload> ReadFrame(int fd, int idle_timeout_ms,
                               int io_timeout_ms) {
  uint8_t prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    // The wait for the first byte is the idle timeout; once a frame has
    // started, stalls are bounded by the (typically tighter) I/O timeout.
    int timeout = got == 0 ? idle_timeout_ms : io_timeout_ms;
    const char* what = got == 0 ? "idle read" : "frame read";
    DODB_RETURN_IF_ERROR(PollFd(fd, POLLIN, timeout, what));
    ssize_t n = ::recv(fd, prefix + got, sizeof(prefix) - got, 0);
    if (n == 0) {
      if (got == 0) {
        FramePayload closed;
        closed.closed = true;
        return closed;
      }
      return Status::Unavailable("torn frame: EOF inside the length prefix");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(StrCat("recv: ", strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  uint32_t length = static_cast<uint32_t>(prefix[0]) |
                    static_cast<uint32_t>(prefix[1]) << 8 |
                    static_cast<uint32_t>(prefix[2]) << 16 |
                    static_cast<uint32_t>(prefix[3]) << 24;
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("frame length ", length, " exceeds the ", kMaxFrameBytes,
               "-byte cap"));
  }
  FramePayload frame;
  frame.bytes.resize(length);
  size_t pos = 0;
  while (pos < length) {
    DODB_RETURN_IF_ERROR(PollFd(fd, POLLIN, io_timeout_ms, "frame read"));
    ssize_t n = ::recv(fd, frame.bytes.data() + pos, length - pos, 0);
    if (n == 0) {
      return Status::Unavailable(
          StrCat("torn frame: EOF after ", pos, " of ", length,
                 " payload bytes"));
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(StrCat("recv: ", strerror(errno)));
    }
    pos += static_cast<size_t>(n);
  }
  return frame;
}

Status WriteFrame(int fd, const std::vector<uint8_t>& payload, int timeout_ms,
                  size_t max_bytes) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", payload.size(), " bytes exceeds the ",
               kMaxFrameBytes, "-byte cap"));
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint32_t length = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<uint8_t>(length));
  frame.push_back(static_cast<uint8_t>(length >> 8));
  frame.push_back(static_cast<uint8_t>(length >> 16));
  frame.push_back(static_cast<uint8_t>(length >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  size_t limit = frame.size() < max_bytes ? frame.size() : max_bytes;
  size_t pos = 0;
  while (pos < limit) {
    DODB_RETURN_IF_ERROR(PollFd(fd, POLLOUT, timeout_ms, "frame write"));
    ssize_t n = ::send(fd, frame.data() + pos, limit - pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(StrCat("send: ", strerror(errno)));
    }
    pos += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* node = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, node, &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("host '", host, "' is not an IPv4 address"));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket: ", strerror(errno)));
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    Status status = Status::Unavailable(StrCat("fcntl: ", strerror(errno)));
    CloseFd(fd);
    return status;
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status status = Status::Unavailable(StrCat("connect: ", strerror(errno)));
    CloseFd(fd);
    return status;
  }
  if (rc < 0) {
    Status ready = PollFd(fd, POLLOUT, timeout_ms, "connect");
    if (!ready.ok()) {
      CloseFd(fd);
      // A connect timeout is transient for retry purposes.
      return ready.code() == StatusCode::kDeadlineExceeded
                 ? Status::Unavailable("connect: timed out")
                 : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status status = Status::Unavailable(
          StrCat("connect: ", strerror(err != 0 ? err : errno)));
      CloseFd(fd);
      return status;
    }
  }
  return fd;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  while (::close(fd) < 0 && errno == EINTR) {
  }
}

}  // namespace server
}  // namespace dodb
