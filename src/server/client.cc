#include "server/client.h"

#include <chrono>
#include <thread>

#include "core/str_util.h"

namespace dodb {
namespace server {

namespace {

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

}  // namespace

DodbClient::DodbClient(ClientOptions options)
    : options_(std::move(options)),
      jitter_state_(options_.jitter_seed != 0 ? options_.jitter_seed : 1) {}

DodbClient::~DodbClient() { Close(); }

void DodbClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
  session_id_ = 0;
  // The server aborts a session's open transaction the moment the
  // connection dies; mirror that here so in_transaction() stays truthful.
  in_transaction_ = false;
}

void DodbClient::Backoff(int attempt) {
  ++retries_;
  uint64_t delay = static_cast<uint64_t>(options_.backoff_initial_ms);
  for (int i = 0; i < attempt && delay < static_cast<uint64_t>(
                                            options_.backoff_max_ms);
       ++i) {
    delay *= 2;
  }
  if (delay > static_cast<uint64_t>(options_.backoff_max_ms)) {
    delay = static_cast<uint64_t>(options_.backoff_max_ms);
  }
  // Deterministic jitter (an LCG, not std::rand) in [0, delay/2]: spreads
  // synchronized retry herds without making tests flaky.
  jitter_state_ =
      jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  delay += (jitter_state_ >> 33) % (delay / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

Status DodbClient::Connect() {
  Status last = Status::Unavailable("connect never attempted");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) Backoff(attempt - 1);
    Close();
    Result<int> fd = ConnectTcp(options_.host, options_.port,
                                options_.connect_timeout_ms);
    if (!fd.ok()) {
      last = fd.status();
      if (IsTransient(last.code())) continue;
      return last;
    }
    fd_ = fd.value();
    Result<FramePayload> frame =
        ReadFrame(fd_, options_.io_timeout_ms, options_.io_timeout_ms);
    if (!frame.ok() || frame.value().closed) {
      // The server died between accept and hello (or the accept fault did).
      last = frame.ok() ? Status::Unavailable("server closed before hello")
                        : frame.status();
      Close();
      if (IsTransient(last.code())) continue;
      return last;
    }
    Result<Hello> hello = DecodeHello(frame.value().bytes);
    if (!hello.ok()) {
      Close();
      return hello.status();  // wrong protocol — retrying cannot help
    }
    if (hello.value().code == StatusCode::kOverloaded) {
      last = Status::Overloaded(hello.value().message);
      Close();
      continue;
    }
    if (hello.value().code != StatusCode::kOk) {
      last = Status(hello.value().code, hello.value().message);
      Close();
      return last;
    }
    session_id_ = hello.value().session_id;
    server_read_only_ = hello.value().read_only;
    return Status::Ok();
  }
  Close();
  return last;
}

Result<Response> DodbClient::RoundTrip(RequestKind kind,
                                       const std::string& text) {
  Request request;
  request.id = next_request_id_++;
  request.kind = kind;
  request.text = text;
  Status sent = WriteFrame(fd_, EncodeRequest(request), options_.io_timeout_ms);
  if (!sent.ok()) return sent;
  Result<FramePayload> frame =
      ReadFrame(fd_, options_.io_timeout_ms, options_.io_timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame.value().closed) {
    return Status::Unavailable("server closed without responding");
  }
  Result<Response> response = DecodeResponse(frame.value().bytes);
  if (!response.ok()) return response.status();
  if (response.value().id != request.id) {
    return Status::Internal(
        StrCat("response id ", response.value().id, " for request ",
               request.id, " — synchronous client, ids must match"));
  }
  return response;
}

Result<Response> DodbClient::Call(RequestKind kind, const std::string& text,
                                  bool retry_transport) {
  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) Backoff(attempt - 1);
    if (!connected()) {
      Status connect = Connect();
      if (!connect.ok()) return connect;  // Connect has its own budget
    }
    Result<Response> response = RoundTrip(kind, text);
    if (!response.ok()) {
      Close();  // the connection is in an unknown framing state
      last = response.status();
      if (retry_transport && IsTransient(last.code())) continue;
      return last;
    }
    if (response.value().code == StatusCode::kOverloaded) {
      // Queue-full shedding: the session survives; just back off and retry.
      last = Status::Overloaded(response.value().message);
      continue;
    }
    return response;
  }
  return last;
}

Result<std::string> DodbClient::Ping() {
  Result<Response> response =
      Call(RequestKind::kPing, "", /*retry_transport=*/true);
  if (!response.ok()) return response.status();
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  return response.value().message;
}

Result<QueryResult> DodbClient::Query(const std::string& text) {
  // In a transaction a reconnect would land in a fresh session whose
  // catalog is NOT the pinned snapshot — surface the failure instead.
  Result<Response> call = Call(RequestKind::kQuery, text,
                               /*retry_transport=*/!in_transaction_);
  if (!call.ok()) return call.status();
  Response& response = call.value();
  if (response.code != StatusCode::kOk) {
    return Status(response.code, response.message);
  }
  QueryResult result;
  result.has_relation = response.has_relation;
  result.head = response.head;
  if (response.has_relation) {
    result.relation = std::move(response.relation);
    // The server sends the minimized relation; rendering it under the head
    // is exactly the shell's output for the same query.
    result.text = result.relation.ToString(&result.head);
  } else {
    result.text = response.message;
  }
  return result;
}

Result<std::string> DodbClient::Command(const std::string& text) {
  Result<Response> response =
      Call(RequestKind::kCommand, text, /*retry_transport=*/false);
  if (!response.ok()) return response.status();
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  return response.value().message;
}

Result<std::string> DodbClient::Begin() {
  // Safe to retry transport here: an unacknowledged begin pinned nothing
  // durable, and the server aborts the orphaned transaction when the old
  // connection dies.
  Result<Response> response =
      Call(RequestKind::kBegin, "", /*retry_transport=*/true);
  if (!response.ok()) return response.status();
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  in_transaction_ = true;
  return response.value().message;
}

Result<std::string> DodbClient::CommitTxn() {
  Result<Response> response =
      Call(RequestKind::kCommit, "", /*retry_transport=*/false);
  // Whatever happened — success, conflict, transport loss — the
  // transaction is gone: the server consumed it, or the session died and
  // the server aborted it.
  in_transaction_ = false;
  if (!response.ok()) return response.status();
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  return response.value().message;
}

Result<std::string> DodbClient::AbortTxn() {
  Result<Response> response =
      Call(RequestKind::kAbort, "", /*retry_transport=*/false);
  in_transaction_ = false;
  if (!response.ok()) return response.status();
  if (response.value().code != StatusCode::kOk) {
    return Status(response.value().code, response.value().message);
  }
  return response.value().message;
}

Result<std::vector<QueryResult>> DodbClient::RunReadOnlyTransaction(
    const std::vector<std::string>& queries) {
  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) Backoff(attempt - 1);
    Result<std::string> begun = Begin();
    if (!begun.ok()) {
      last = begun.status();
      if (IsTransient(last.code())) continue;
      return last;
    }
    std::vector<QueryResult> results;
    results.reserve(queries.size());
    bool transient = false;
    for (const std::string& text : queries) {
      Result<QueryResult> answer = Query(text);
      if (!answer.ok()) {
        last = answer.status();
        if (in_transaction_) AbortTxn();
        if (IsTransient(last.code())) {
          transient = true;
          break;
        }
        return last;  // a real query error; retrying cannot help
      }
      results.push_back(std::move(answer).value());
    }
    if (transient) continue;
    Result<std::string> committed = CommitTxn();
    if (committed.ok()) return results;
    last = committed.status();
    // kTxnConflict (the forged-validation chaos fault, or a future
    // read-validation scheme) and transport losses both restart the whole
    // transaction against a fresh snapshot.
    if (last.code() == StatusCode::kTxnConflict || IsTransient(last.code())) {
      continue;
    }
    return last;
  }
  return last;
}

}  // namespace server
}  // namespace dodb
