#ifndef DODB_SERVER_PROTOCOL_H_
#define DODB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {
namespace server {

/// The dodb client/server wire protocol (DESIGN.md §15).
///
/// Every message is one length-prefixed frame:
///   u32      payload length (little-endian, <= kMaxFrameBytes)
///   payload  ByteWriter-encoded message (the same DODBSNP1 primitive
///            codecs the snapshot and WAL formats use, binary_format.h)
///
/// Connection lifecycle: the server speaks first with a Hello frame (magic,
/// protocol version, admission verdict, session id). A kOk hello admits the
/// session; a kOverloaded hello is the admission-control rejection — the
/// server closes right after it and the client retries with backoff. After
/// the hello, the client sends Request frames and the server answers each
/// with exactly one Response frame carrying the request's id (queue-full
/// rejections may overtake in-flight requests, which is why responses carry
/// ids at all).
///
/// Relations travel as the snapshot format's relation payload
/// (ByteWriter::PutRelationPayload), so a query answer decodes into exactly
/// the GeneralizedRelation the server's evaluator produced — the
/// server-vs-shell differential checks bit-identical text on both sides.

inline constexpr char kServerMagic[8] = {'D', 'O', 'D', 'B',
                                         'S', 'R', 'V', '1'};
inline constexpr uint32_t kProtocolVersion = 1;
/// Hard cap on one frame's payload; a longer length prefix is a protocol
/// violation (or garbage traffic) and the connection is dropped.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class RequestKind : uint8_t {
  kPing = 1,     // liveness probe; answer is "pong"
  kQuery = 2,    // FO/FO+ query text; answer carries a relation payload
                 // (dense fragment) or formatted text (FO+ linear)
  kCommand = 3,  // create/drop/insert/delete DML; answer is a summary line
  // Multi-statement transactions (DESIGN.md §16). Between kBegin and
  // kCommit/kAbort, the session's queries read the transaction's pinned
  // snapshot (plus its own buffered writes) and kCommand buffers DML into
  // the write set instead of auto-committing. Text payloads are ignored.
  kBegin = 4,    // open a transaction; answer names the pinned generation
  kCommit = 5,   // validate + install; kTxnConflict = first committer won
  kAbort = 6,    // discard the write set; always succeeds in a transaction
};

struct Request {
  uint64_t id = 0;  // echoed in the response; client-assigned
  RequestKind kind = RequestKind::kPing;
  std::string text;
};

/// The server's first frame on every accepted connection.
struct Hello {
  uint32_t version = kProtocolVersion;
  StatusCode code = StatusCode::kOk;  // kOverloaded = admission refused
  uint64_t session_id = 0;
  bool read_only = false;  // storage degraded; DML will be refused
  std::string message;
};

struct Response {
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  /// Command summary, error text, or the FO+ linear answer rendered as
  /// text (linear relations have no binary payload codec).
  std::string message;
  bool has_relation = false;
  GeneralizedRelation relation{0};
  std::vector<std::string> head;  // query head variable names, in order
};

std::vector<uint8_t> EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeRequest(const Request& request);
Result<Request> DecodeRequest(const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeResponse(const Response& response);
Result<Response> DecodeResponse(const std::vector<uint8_t>& payload);

// ---------------------------------------------------------------------------
// Framing over a (non-blocking) socket. All calls loop over EINTR and
// enforce their timeouts with poll(); a peer that stalls mid-frame gets
// kDeadlineExceeded, a torn frame (EOF mid-payload) gets kUnavailable —
// both transient, typed for the client's retry policy.

/// What ReadFrame found.
struct FramePayload {
  std::vector<uint8_t> bytes;
  /// True when the peer closed cleanly before any byte of a frame arrived
  /// (bytes is then empty) — end of conversation, not an error.
  bool closed = false;
};

/// Reads one frame. `idle_timeout_ms` bounds the wait for the frame's first
/// byte (the server's per-session idle timeout); `io_timeout_ms` bounds
/// every subsequent stall mid-frame. 0 = wait forever.
Result<FramePayload> ReadFrame(int fd, int idle_timeout_ms, int io_timeout_ms);

/// Writes [length][payload]. `max_bytes` below the full frame size writes
/// only that prefix and then reports success — the server's torn-frame
/// fault (server-write) uses it to leave a half-written frame on the wire
/// exactly like a crash mid-send would.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload, int timeout_ms,
                  size_t max_bytes = SIZE_MAX);

/// Non-blocking TCP connect with timeout. Transient failures (refused,
/// unreachable, timeout) come back kUnavailable so the client's backoff
/// loop can distinguish them from programming errors.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms);

/// EINTR-safe close. Safe on -1.
void CloseFd(int fd);

}  // namespace server
}  // namespace dodb

#endif  // DODB_SERVER_PROTOCOL_H_
