#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <sstream>

#include "core/str_util.h"
#include "datalog/view_maintenance.h"
#include "fo/analyzer.h"
#include "fo/linear_evaluator.h"
#include "fo/parser.h"
#include "io/commands.h"
#include "storage/storage_engine.h"

namespace dodb {
namespace server {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// Minimizes every tuple, the shell's presentation form (PrintRelation /
/// RunFoQuery do the same before ToString) — the differential test compares
/// the client's rendering of this relation against the shell's text.
GeneralizedRelation Minimize(const GeneralizedRelation& relation) {
  GeneralizedRelation pretty(relation.arity());
  for (const auto& tuple : relation.tuples()) {
    pretty.AddTuple(tuple.Minimized());
  }
  return pretty;
}

bool IsGuardTrip(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

}  // namespace

/// One admitted connection: a reader thread feeding a bounded queue and a
/// worker thread draining it. Frame writes (worker responses and the
/// reader's queue-full rejections) serialize on write_mu.
struct DodbServer::Session {
  uint64_t id = 0;
  int fd = -1;
  DodbServer* server = nullptr;

  std::thread reader;
  std::thread worker;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Request> queue;
  bool closing = false;

  std::mutex write_mu;
  std::atomic<bool> done{false};

  /// The session's open transaction, if any. Touched ONLY by the worker
  /// thread (begin/commit/abort/query all flow through the worker), so no
  /// lock guards it; the worker aborts it on session close.
  std::unique_ptr<txn::Transaction> txn;

  /// Wakes both threads: the worker via the cv, the reader via socket
  /// shutdown (its poll() returns immediately once the fd is shut down).
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closing = true;
    }
    cv.notify_all();
    ::shutdown(fd, SHUT_RDWR);
  }
};

DodbServer::DodbServer(Database* db, storage::StorageEngine* engine,
                       ViewRegistry* views, ServerConfig config)
    : db_(db), engine_(engine), views_(views), config_(std::move(config)) {}

DodbServer::~DodbServer() { Stop(); }

Status DodbServer::Start() {
  if (started_) return Status::Internal("server already started");
  DODB_RETURN_IF_ERROR(ValidateFaultSiteRegistry());
  DODB_RETURN_IF_ERROR(fault_.Arm(config_.fault_spec));
  if (views_ != nullptr) {
    // View maintenance passes inherit the server's evaluation knobs, minus
    // the per-request guard machinery (maintenance runs post-commit).
    EvalOptions options = config_.eval_options;
    options.limits = GuardLimits{};
    options.guard = nullptr;
    options.fault_spec.clear();
    views_->options().datalog.eval_options = options;
  }
  // The MVCC heart: publishes the initial snapshot (warming every relation)
  // and owns generations from here on. All catalog mutation now flows
  // through it; queries read its published snapshots lock-free.
  txn_ = std::make_unique<txn::TransactionManager>(db_, engine_, views_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(StrCat("socket: ", strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    Status status = Status::Unavailable(
        StrCat("bind port ", config_.port, ": ", strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status = Status::Unavailable(StrCat("listen: ", strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_)) {
    Status status = Status::Unavailable(StrCat("fcntl: ", strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void DodbServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& session : sessions_) session->Kick();
  }
  ReapFinished(/*join_all=*/true);
  started_ = false;
}

int DodbServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  int live = 0;
  for (const auto& session : sessions_) {
    if (!session->done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

bool DodbServer::read_only() const {
  return engine_ != nullptr && engine_->read_only();
}

void DodbServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 50);
    ReapFinished(/*join_all=*/false);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleAccept(fd);
  }
}

void DodbServer::HandleAccept(int fd) {
  // The accept fault: the nth connection dies before any byte is exchanged,
  // exactly like a network blip between accept and hello. The client sees
  // EOF/reset (kUnavailable) and retries.
  if (fault_.Hit(GuardSite::kServerAccept)) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    CloseFd(fd);
    return;
  }
  if (!SetNonBlocking(fd)) {
    CloseFd(fd);
    return;
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  std::unique_lock<std::mutex> lock(sessions_mu_);
  int live = 0;
  for (const auto& session : sessions_) {
    if (!session->done.load(std::memory_order_acquire)) ++live;
  }
  if (live >= config_.max_sessions) {
    lock.unlock();
    stats_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    Hello refused;
    refused.code = StatusCode::kOverloaded;
    refused.read_only = read_only();
    refused.message = StrCat("server at capacity (", config_.max_sessions,
                             " sessions); retry with backoff");
    WriteFrame(fd, EncodeHello(refused), config_.io_timeout_ms);
    CloseFd(fd);
    return;
  }

  auto session = std::make_unique<Session>();
  session->id = next_session_id_++;
  session->fd = fd;
  session->server = this;
  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  lock.unlock();

  stats_.sessions_admitted.fetch_add(1, std::memory_order_relaxed);
  Hello hello;
  hello.session_id = raw->id;
  hello.read_only = read_only();
  hello.message = "dodb server ready";
  Status sent;
  {
    std::lock_guard<std::mutex> write_lock(raw->write_mu);
    sent = WriteFrame(fd, EncodeHello(hello), config_.io_timeout_ms);
  }
  if (!sent.ok()) {
    raw->Kick();
    raw->done.store(true, std::memory_order_release);
    return;
  }
  raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
  raw->worker = std::thread([this, raw] { WorkerLoop(raw); });
}

void DodbServer::ReaderLoop(Session* session) {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->closing) break;
    }
    // The read fault: the nth arriving frame is thrown away with the
    // connection, as if the peer reset mid-conversation.
    Result<FramePayload> frame = ReadFrame(
        session->fd, config_.idle_timeout_ms, config_.io_timeout_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (frame.value().closed) break;
    if (fault_.Hit(GuardSite::kServerRead)) {
      stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Result<Request> request = DecodeRequest(frame.value().bytes);
    if (!request.ok()) {
      // Protocol violation: answer once (id 0 — the frame never yielded an
      // id) and drop the connection.
      Response malformed;
      malformed.code = request.status().code();
      malformed.message = request.status().message();
      WriteResponse(session, malformed);
      break;
    }
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->closing) break;
      if (static_cast<int>(session->queue.size()) >= config_.max_queue) {
        reject = true;
      } else {
        session->queue.push_back(std::move(request).value());
      }
    }
    if (reject) {
      // Bounded-queue admission: reject NOW, ahead of the in-flight work.
      stats_.queue_rejected.fetch_add(1, std::memory_order_relaxed);
      Response overloaded;
      overloaded.id = request.value().id;
      overloaded.code = StatusCode::kOverloaded;
      overloaded.message = StrCat("session queue full (", config_.max_queue,
                                  " pending); retry with backoff");
      if (!WriteResponse(session, overloaded)) break;
    } else {
      session->cv.notify_one();
    }
  }
  session->Kick();
}

void DodbServer::WorkerLoop(Session* session) {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(session->mu);
      session->cv.wait(lock, [session] {
        return session->closing || !session->queue.empty();
      });
      if (session->queue.empty()) break;  // closing and drained
      request = std::move(session->queue.front());
      session->queue.pop_front();
    }
    bool kill_session = false;
    bool drop_silently = false;
    Response response =
        ExecuteRequest(session, request, &kill_session, &drop_silently);
    if (drop_silently) {
      stats_.sessions_killed.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (response.code == StatusCode::kOk) {
      stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.requests_error.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteResponse(session, response)) break;
    if (kill_session) {
      stats_.sessions_killed.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  // A dropped connection aborts the session's open transaction: nothing was
  // logged or installed, so discarding the write set IS the rollback.
  if (session->txn != nullptr) {
    txn_->Abort(std::move(session->txn));
  }
  session->Kick();
  session->done.store(true, std::memory_order_release);
}

Response DodbServer::ExecuteRequest(Session* session, const Request& request,
                                    bool* kill_session, bool* drop_silently) {
  switch (request.kind) {
    case RequestKind::kPing: {
      Response response;
      response.id = request.id;
      response.message = "pong";
      return response;
    }
    case RequestKind::kQuery:
      return ExecuteQuery(session, request, kill_session);
    case RequestKind::kCommand:
      return ExecuteCommandRequest(session, request, kill_session,
                                   drop_silently);
    case RequestKind::kBegin:
      return ExecuteBegin(session, request, drop_silently);
    case RequestKind::kCommit:
      return ExecuteCommit(session, request);
    case RequestKind::kAbort:
      return ExecuteAbort(session, request);
  }
  Response response;
  response.id = request.id;
  response.code = StatusCode::kInvalidArgument;
  response.message = "unknown request kind";
  return response;
}

Response DodbServer::ExecuteQuery(Session* session, const Request& request,
                                  bool* kill_session) {
  Response response;
  response.id = request.id;

  // Per-request guard: the server-side \limit. Fresh per request so one
  // runaway query cannot eat a later request's budget, and a trip is typed
  // (kDeadlineExceeded / kResourceExhausted) and kills only this session.
  QueryGuard guard(config_.session_limits);
  EvalOptions options = config_.eval_options;
  options.limits = GuardLimits{};
  options.guard = &guard;
  options.fault_spec.clear();

  Result<Query> query = FoParser::ParseQuery(request.text);
  if (!query.ok()) {
    response.code = query.status().code();
    response.message = query.status().message();
    return response;
  }
  response.head = query.value().head;

  // NO execution mutex: the query reads an immutable catalog. Inside a
  // transaction that is the pinned workspace (snapshot + own buffered
  // writes, owned by this worker thread); outside it is the latest
  // published snapshot, whose shared_ptr we hold for the whole evaluation
  // so a concurrent commit can publish freely without invalidating us.
  std::shared_ptr<const Database> pinned;
  const Database* catalog;
  if (session->txn != nullptr) {
    catalog = &session->txn->workspace();
  } else {
    pinned = txn_->current_snapshot();
    catalog = pinned.get();
  }
  Result<QueryAnalysis> analysis = Analyze(query.value(), catalog);
  if (!analysis.ok()) {
    response.code = analysis.status().code();
    response.message = analysis.status().message();
    return response;
  }
  if (analysis.value().is_dense_fragment) {
    FoEvaluator evaluator(catalog, options);
    Result<GeneralizedRelation> out = evaluator.Evaluate(query.value());
    if (!out.ok()) {
      response.code = out.status().code();
      response.message = out.status().message();
      *kill_session = IsGuardTrip(response.code);
      return response;
    }
    if (query.value().head.empty()) {
      response.message = out.value().IsEmpty() ? "false" : "true";
      return response;
    }
    response.has_relation = true;
    response.relation = Minimize(out.value());
    return response;
  }
  LinearFoEvaluator evaluator(catalog, options);
  Result<LinearRelation> out = evaluator.Evaluate(query.value());
  if (!out.ok()) {
    response.code = out.status().code();
    response.message = out.status().message();
    *kill_session = IsGuardTrip(response.code);
    return response;
  }
  if (query.value().head.empty()) {
    response.message = out.value().IsEmpty() ? "false" : "true";
  } else {
    // Linear relations have no wire codec; the rendered text IS the answer.
    response.message = out.value().ToString(&query.value().head);
  }
  return response;
}

Response DodbServer::ExecuteCommandRequest(Session* session,
                                           const Request& request,
                                           bool* kill_session,
                                           bool* drop_silently) {
  Response response;
  response.id = request.id;
  std::string text(StripWhitespace(request.text));

  // \sleep <ms>: a diagnostic stall, letting the overload tests fill this
  // session's bounded queue deterministically.
  if (text.rfind("\\sleep ", 0) == 0) {
    uint64_t ms = 0;
    std::istringstream in(text.substr(7));
    if (!(in >> ms) || ms > 10000) {
      response.code = StatusCode::kInvalidArgument;
      response.message = "usage: \\sleep <ms in [0, 10000]>";
      return response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    response.message = StrCat("slept ", ms, " ms");
    return response;
  }

  // The commit fault: the server "dies" after admitting the command but
  // before its WAL append — the catalog and the log are untouched and the
  // client never sees an ack, so recovery must NOT resurface the command.
  // (Acknowledged commands are durable before their ack by the storage
  // discipline, so the sweep's other half holds by construction.)
  if (fault_.Hit(GuardSite::kSessionCommit)) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    *drop_silently = true;
    return response;
  }

  if (text == "\\checkpoint") {
    if (session->txn != nullptr) {
      stats_.txn_invalid_state.fetch_add(1, std::memory_order_relaxed);
      response.code = StatusCode::kTxnInvalidState;
      response.message =
          "\\checkpoint is not allowed inside a transaction; "
          "commit or abort first";
      return response;
    }
    if (engine_ == nullptr) {
      response.code = StatusCode::kUnsupported;
      response.message = "no storage attached to this server";
      return response;
    }
    Status status = txn_->Checkpoint();
    response.code = status.code();
    response.message = status.ok() ? StrCat("checkpointed to generation ",
                                            engine_->generation())
                                   : status.message();
  } else if (session->txn != nullptr) {
    // In a transaction: the statement executes against the private
    // workspace and joins the buffered write set — no locks, no WAL, no
    // published catalog change until commit.
    Result<std::string> outcome =
        txn_->ExecuteBuffered(session->txn.get(), text);
    if (outcome.ok()) {
      response.message = outcome.value();
    } else {
      response.code = outcome.status().code();
      response.message = outcome.status().message();
      *kill_session = IsGuardTrip(response.code);
    }
  } else {
    // Bare statement: auto-commit with the serial log→apply→maintain
    // discipline, serialized on the manager's write mutex (readers are
    // unaffected — they hold the previous snapshot).
    Result<std::string> outcome = txn_->AutoCommit(text);
    if (outcome.ok()) {
      response.message = outcome.value();
    } else {
      response.code = outcome.status().code();
      response.message = outcome.status().message();
      *kill_session = IsGuardTrip(response.code);
    }
  }
  if (response.code == StatusCode::kReadOnly) {
    stats_.readonly_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

Response DodbServer::ExecuteBegin(Session* session, const Request& request,
                                  bool* drop_silently) {
  Response response;
  response.id = request.id;
  if (session->txn != nullptr) {
    stats_.txn_invalid_state.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kTxnInvalidState;
    response.message = StrCat("transaction ", session->txn->id(),
                              " is already open; commit or abort it first");
    return response;
  }
  // The begin fault: the connection dies before the transaction opens.
  // Nothing to recover — an unacknowledged begin never pinned anything.
  if (fault_.Hit(GuardSite::kTxnBegin)) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    *drop_silently = true;
    return response;
  }
  session->txn = txn_->Begin();
  response.message =
      StrCat("transaction ", session->txn->id(), " began at generation ",
             session->txn->begin_generation());
  return response;
}

Response DodbServer::ExecuteCommit(Session* session, const Request& request) {
  Response response;
  response.id = request.id;
  if (session->txn == nullptr) {
    stats_.txn_invalid_state.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kTxnInvalidState;
    response.message = "no open transaction to commit";
    return response;
  }
  uint64_t id = session->txn->id();
  size_t writes = session->txn->write_set_size();
  // The commit-validate fault: the nth commit is forged into a conflict —
  // the client-visible shape of losing first-committer-wins, letting the
  // chaos tests drive the retry path deterministically. The transaction is
  // dead either way; nothing reached the WAL or the catalog.
  if (fault_.Hit(GuardSite::kTxnCommitValidate)) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    txn_->Abort(std::move(session->txn));
    response.code = StatusCode::kTxnConflict;
    response.message = StrCat("transaction ", id,
                              " lost validation (injected conflict); retry");
    return response;
  }
  std::string warning;
  Status status = txn_->Commit(std::move(session->txn), &warning);
  response.code = status.code();
  if (status.ok()) {
    response.message = StrCat("transaction ", id, " committed (", writes,
                              " buffered statements) at generation ",
                              txn_->generation());
    if (!warning.empty()) {
      response.message = StrCat(response.message, "; warning: ", warning);
    }
  } else {
    response.message = status.message();
  }
  if (response.code == StatusCode::kReadOnly) {
    stats_.readonly_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

Response DodbServer::ExecuteAbort(Session* session, const Request& request) {
  Response response;
  response.id = request.id;
  if (session->txn == nullptr) {
    stats_.txn_invalid_state.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kTxnInvalidState;
    response.message = "no open transaction to abort";
    return response;
  }
  uint64_t id = session->txn->id();
  size_t writes = session->txn->write_set_size();
  txn_->Abort(std::move(session->txn));
  response.message = StrCat("transaction ", id, " aborted (", writes,
                            " buffered statements discarded)");
  return response;
}

bool DodbServer::WriteResponse(Session* session, const Response& response) {
  std::lock_guard<std::mutex> lock(session->write_mu);
  std::vector<uint8_t> payload = EncodeResponse(response);
  // The write fault: tear the nth response mid-frame — the length prefix
  // promises more bytes than ever arrive, exactly what a crash mid-send
  // leaves on the wire. The client reads a torn frame (kUnavailable).
  if (fault_.Hit(GuardSite::kServerWrite)) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    WriteFrame(session->fd, payload, config_.io_timeout_ms,
               (payload.size() + 4) / 2);
    return false;
  }
  return WriteFrame(session->fd, payload, config_.io_timeout_ms).ok();
}

void DodbServer::ReapFinished(bool join_all) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : finished) {
    if (session->reader.joinable()) session->reader.join();
    if (session->worker.joinable()) session->worker.join();
    CloseFd(session->fd);
  }
}

}  // namespace server
}  // namespace dodb
