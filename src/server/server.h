#ifndef DODB_SERVER_SERVER_H_
#define DODB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/status.h"
#include "fo/evaluator.h"
#include "io/database.h"
#include "server/protocol.h"
#include "txn/transaction_manager.h"

namespace dodb {

class ViewRegistry;

namespace storage {
class StorageEngine;
}  // namespace storage

namespace server {

/// Multi-client server configuration (DESIGN.md §15). The defaults are the
/// test/bench profile; the shell's \serve and the dodb_server binary expose
/// the knobs that matter operationally.
struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() — the tests run this way so parallel ctest never collides).
  uint16_t port = 0;
  /// Admission control: connections beyond this many concurrent sessions
  /// get a Hello{kOverloaded} and are closed. The client retries with
  /// backoff; the server never queues un-admitted connections.
  int max_sessions = 8;
  /// Per-session request queue bound. A request arriving while this many
  /// are already pending is answered kOverloaded immediately (the rejection
  /// overtakes the in-flight requests — responses carry ids for exactly
  /// this reason). Bounded on purpose: an unbounded queue turns overload
  /// into unbounded memory growth and unbounded latency.
  int max_queue = 4;
  /// Close a session whose client sends nothing for this long. 0 = never.
  int idle_timeout_ms = 30000;
  /// Bound on any single read/write stall mid-frame (a peer that opens a
  /// frame and walks away cannot hold a session slot forever).
  int io_timeout_ms = 5000;
  /// Per-request guard budgets (the server-side \limit): each request runs
  /// under a fresh QueryGuard with these limits. A trip kills only the
  /// offending session — the error is typed, acknowledged, and the
  /// connection closed; every other session keeps running.
  GuardLimits session_limits;
  /// OneShotFault spec for the server's own sites (server-accept,
  /// server-read, server-write, session-commit, txn-begin,
  /// txn-commit-validate), "<site>[:<nth>]". Empty = DODB_FAULT when set,
  /// else off. Storage sites (including txn-wal-commit) are armed on the
  /// engine at Open, not here.
  std::string fault_spec;
  /// Evaluation knobs shared by every session (threads, index, shards...).
  /// limits/guard/fault_spec inside are ignored — session_limits and a
  /// per-request guard take their place.
  EvalOptions eval_options;
};

/// Monotonic counters, readable while the server runs (the soak driver and
/// the overload bench poll them). Atomics, not a snapshot.
struct ServerStats {
  std::atomic<uint64_t> sessions_admitted{0};
  std::atomic<uint64_t> sessions_rejected{0};  // admission kOverloaded
  std::atomic<uint64_t> queue_rejected{0};     // per-session queue full
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};     // answered with a non-OK code
  std::atomic<uint64_t> readonly_rejected{0};  // DML refused with kReadOnly
  std::atomic<uint64_t> sessions_killed{0};    // guard trip / commit fault
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> faults_injected{0};    // OneShotFault firings
  std::atomic<uint64_t> txn_invalid_state{0};  // begin/commit/abort misuse
};

/// A TCP server multiplexing many client sessions onto one Database.
///
/// Threading: one acceptor thread; per session a reader thread (socket →
/// bounded queue) and a worker thread (queue → execute → socket). Reads run
/// CONCURRENTLY: every query evaluates lock-free against an immutable,
/// pre-warmed MVCC snapshot (the session's open transaction's pinned
/// workspace, or the latest published generation for bare statements) —
/// see txn/transaction_manager.h. Only catalog mutation serializes, on the
/// transaction manager's internal write mutex: auto-commit DML, transaction
/// commits and checkpoints. Workers never share a mutex for evaluation.
///
/// Graceful degradation: a WAL sync failure flips the engine sticky
/// read-only (storage_engine.h); the server keeps answering queries and
/// refuses DML with kReadOnly. Guard trips (deadline/work/memory) kill only
/// the offending session. Fault sites (core/fault_injection.h) let the
/// chaos tests drop the nth accept, tear the nth response frame mid-write,
/// and kill a commit before its WAL append — recovery is then proven by
/// reopening the data directory. Transaction sites extend the sweep: drop
/// the nth begin (in-flight txn vanishes), forge a validation conflict on
/// the nth commit, and (storage-side) kill the nth commit between
/// validation and its WAL group append.
///
/// The db/engine/views pointers must outlive the server, and no other
/// thread may mutate them between Start() and Stop() (the shell's \serve
/// blocks its REPL for exactly this reason). engine and views may be null:
/// null engine = in-memory only (DML works, nothing durable), null views =
/// no view maintenance.
class DodbServer {
 public:
  DodbServer(Database* db, storage::StorageEngine* engine, ViewRegistry* views,
             ServerConfig config);
  ~DodbServer();
  DodbServer(const DodbServer&) = delete;
  DodbServer& operator=(const DodbServer&) = delete;

  /// Validates the fault-site registry, arms the fault spec, binds, listens
  /// and starts the acceptor. Returns the bind/listen error; kUnavailable
  /// for a busy port.
  Status Start();

  /// Stops accepting, kicks every live session and joins all threads.
  /// Idempotent. The destructor calls it.
  void Stop();

  /// The bound port (after Start); the configured port before.
  uint16_t port() const { return port_; }
  /// Live (admitted, not yet finished) sessions.
  int active_sessions() const;
  /// Whether the engine has degraded to read-only (false without an engine).
  bool read_only() const;
  const ServerStats& stats() const { return stats_; }
  /// Transaction counters (null before Start()). The soak driver and
  /// bench_txn poll these alongside stats().
  const txn::TxnCounters* txn_counters() const {
    return txn_ != nullptr ? &txn_->counters() : nullptr;
  }

 private:
  struct Session;

  void AcceptLoop();
  void HandleAccept(int fd);
  void ReaderLoop(Session* session);
  void WorkerLoop(Session* session);
  /// Executes one request (Ping/Query/Command/Begin/Commit/Abort). Sets
  /// *kill_session when the session must close after the response goes out
  /// (guard trip), and *drop_silently when the connection must die with NO
  /// response (session-commit / txn-begin faults: the crash happens before
  /// anything durable, so the client never gets an ack and recovery must
  /// not resurface the work).
  Response ExecuteRequest(Session* session, const Request& request,
                          bool* kill_session, bool* drop_silently);
  Response ExecuteQuery(Session* session, const Request& request,
                        bool* kill_session);
  Response ExecuteCommandRequest(Session* session, const Request& request,
                                 bool* kill_session, bool* drop_silently);
  Response ExecuteBegin(Session* session, const Request& request,
                        bool* drop_silently);
  Response ExecuteCommit(Session* session, const Request& request);
  Response ExecuteAbort(Session* session, const Request& request);
  /// Serialized frame write with the server-write torn-frame fault wired
  /// in. Returns false when the session must close (torn or failed write).
  bool WriteResponse(Session* session, const Response& response);
  void ReapFinished(bool join_all);

  Database* const db_;
  storage::StorageEngine* const engine_;
  ViewRegistry* const views_;
  const ServerConfig config_;

  OneShotFault fault_;
  ServerStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  /// Snapshot publication + transaction lifecycle (created at Start()).
  /// Queries never lock it; commits serialize inside it.
  std::unique_ptr<txn::TransactionManager> txn_;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  bool started_ = false;
};

}  // namespace server
}  // namespace dodb

#endif  // DODB_SERVER_SERVER_H_
