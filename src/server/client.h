#ifndef DODB_SERVER_CLIENT_H_
#define DODB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "server/protocol.h"

namespace dodb {
namespace server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Bound on waiting for any one response / mid-frame stall.
  int io_timeout_ms = 30000;
  /// Retry budget for kOverloaded rejections and transient transport
  /// failures (kUnavailable): total attempts = 1 + max_retries.
  int max_retries = 6;
  /// Capped exponential backoff between retries: attempt n sleeps
  /// min(initial << n, max) plus jitter in [0, delay/2], from a
  /// deterministic per-client LCG so tests replay byte-identically.
  int backoff_initial_ms = 5;
  int backoff_max_ms = 200;
  uint64_t jitter_seed = 1;
};

/// One query answer, rendered exactly as the shell would print it.
struct QueryResult {
  /// The shell's text: a minimized relation ToString under the query head,
  /// "true"/"false" for boolean queries, or the FO+ linear rendering.
  std::string text;
  bool has_relation = false;
  GeneralizedRelation relation{0};
  std::vector<std::string> head;
};

/// A synchronous dodb client: one TCP connection, one request in flight.
///
/// Retry contract (DESIGN.md §15): Connect() and every request retry
/// kOverloaded with capped exponential backoff + jitter. Query() and Ping()
/// also retry transient transport failures (torn frame, reset, timeout) by
/// reconnecting — queries are idempotent. Command() does NOT retry a
/// transport failure after the request was sent: the command may have
/// committed before the connection died (commit ambiguity), and replaying
/// a non-idempotent command forges state. It surfaces kUnavailable and
/// lets the caller decide.
///
/// Transactions (DESIGN.md §16): Begin() retries transport failures (an
/// unacknowledged begin pinned nothing — the server aborts the orphan on
/// disconnect). CommitTxn() and AbortTxn() do not (same commit ambiguity as
/// Command). While a transaction is open, Query() also stops retrying
/// transport failures: a reconnect lands in a fresh session whose catalog
/// is NOT the pinned snapshot, so the failure must surface and the caller
/// restarts the transaction. RunReadOnlyTransaction() packages the retry:
/// it reruns the whole begin→query*→commit sequence on kTxnConflict or a
/// mid-transaction transport failure, with the usual backoff.
///
/// Not thread-safe; one DodbClient per thread.
class DodbClient {
 public:
  explicit DodbClient(ClientOptions options);
  ~DodbClient();
  DodbClient(const DodbClient&) = delete;
  DodbClient& operator=(const DodbClient&) = delete;

  /// Connects and reads the server hello, retrying admission rejections and
  /// transient connect failures with backoff. Returns the hello's verdict:
  /// kOverloaded/kUnavailable only after the retry budget is spent.
  Status Connect();

  /// Liveness round trip ("pong").
  Result<std::string> Ping();

  /// Evaluates an FO/FO+ query; the result renders shell-identically.
  Result<QueryResult> Query(const std::string& text);

  /// Runs a DML command (create/insert/delete/drop), a \checkpoint, or the
  /// \sleep diagnostic; returns the server's one-line summary. Inside an
  /// open transaction the command is buffered server-side, not committed.
  Result<std::string> Command(const std::string& text);

  /// Opens a transaction pinned to the server's current snapshot. Fails
  /// with kTxnInvalidState if one is already open on this session.
  Result<std::string> Begin();

  /// Commits the open transaction. kTxnConflict = first committer won and
  /// the transaction is gone — rebuild it from current state and retry.
  /// The transaction is closed on this client whatever the outcome.
  Result<std::string> CommitTxn();

  /// Discards the open transaction's buffered writes.
  Result<std::string> AbortTxn();

  /// Begin → each query in order → commit, retrying the WHOLE sequence
  /// (fresh begin, fresh snapshot) on kTxnConflict or a mid-transaction
  /// transport failure, with the client's usual backoff budget. The
  /// answers are mutually consistent: all evaluated against one snapshot.
  Result<std::vector<QueryResult>> RunReadOnlyTransaction(
      const std::vector<std::string>& queries);

  void Close();

  bool connected() const { return fd_ >= 0; }
  /// Whether this session has an open (begun, not yet resolved) transaction.
  /// Cleared by commit/abort and by any disconnect (the server aborts the
  /// orphaned transaction on its side).
  bool in_transaction() const { return in_transaction_; }
  uint64_t session_id() const { return session_id_; }
  /// The server's read_only flag from the admitting hello.
  bool server_read_only() const { return server_read_only_; }
  /// Total backoff retries this client has performed (tests assert the
  /// retry path actually ran).
  uint64_t retries() const { return retries_; }

 private:
  Result<Response> Call(RequestKind kind, const std::string& text,
                        bool retry_transport);
  Result<Response> RoundTrip(RequestKind kind, const std::string& text);
  void Backoff(int attempt);

  const ClientOptions options_;
  int fd_ = -1;
  uint64_t session_id_ = 0;
  bool in_transaction_ = false;
  bool server_read_only_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t retries_ = 0;
  uint64_t jitter_state_;
};

}  // namespace server
}  // namespace dodb

#endif  // DODB_SERVER_CLIENT_H_
