#ifndef DODB_IO_DATABASE_H_
#define DODB_IO_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "cells/standard_encoding.h"
#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {

/// A dense-order constraint database: a catalog of named finitely
/// representable relations (the paper's database instances over a schema).
class Database {
 public:
  Database() = default;

  /// Registers a new relation; fails if the name is taken.
  Status AddRelation(const std::string& name, GeneralizedRelation relation);

  /// Inserts or replaces.
  void SetRelation(const std::string& name, GeneralizedRelation relation);

  /// Removes a relation; returns whether it existed.
  bool RemoveRelation(const std::string& name);

  bool HasRelation(const std::string& name) const;

  /// The relation, or nullptr when absent.
  const GeneralizedRelation* FindRelation(const std::string& name) const;

  /// Names in sorted (schema) order.
  std::vector<std::string> RelationNames() const;

  size_t relation_count() const { return relations_.size(); }

  /// Union of all relations' constants, ascending (the database's active
  /// scale: the input to the §3 standard encoding).
  std::vector<Rational> AllConstants() const;

  /// The standard encoding over this database's constants.
  StandardEncoding BuildEncoding() const;

  /// The database with every relation rewritten through the encoding
  /// (constants become consecutive integers).
  Database Encoded() const;

  /// The database with `map` applied to every constant of every relation
  /// (an order-isomorphic copy when `map` is an automorphism of Q).
  Database Mapped(const MonotoneMap& map) const;

  /// Automorphism-invariant fingerprint: relation names with their cell
  /// signatures under this database's standard encoding. Two databases are
  /// order-isomorphic iff their signatures are equal. `limit` bounds each
  /// relation's cell decomposition (0 = none).
  Result<std::string> CanonicalSignature(uint64_t limit = 0) const;

 private:
  std::map<std::string, GeneralizedRelation> relations_;
};

}  // namespace dodb

#endif  // DODB_IO_DATABASE_H_
