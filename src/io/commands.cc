#include "io/commands.h"

#include <cctype>
#include <vector>

#include "algebra/relational_ops.h"
#include "core/check.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "core/thread_pool.h"
#include "datalog/view_maintenance.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "storage/storage_engine.h"

namespace dodb {

namespace {

// Splits off the first whitespace-delimited word.
std::string_view NextWord(std::string_view* text) {
  *text = StripWhitespace(*text);
  size_t end = 0;
  while (end < text->size() &&
         !std::isspace(static_cast<unsigned char>((*text)[end]))) {
    ++end;
  }
  std::string_view word = text->substr(0, end);
  text->remove_prefix(end);
  *text = StripWhitespace(*text);
  return word;
}

bool IsIdentifier(std::string_view word) {
  if (word.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(word[0])) && word[0] != '_') {
    return false;
  }
  for (char c : word) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

// Evaluates `formula_text` over the columns x0..x(arity-1) of `db`.
Result<GeneralizedRelation> EvalCondition(const Database& db, int arity,
                                          std::string_view formula_text) {
  Result<FormulaPtr> formula = FoParser::ParseFormula(formula_text);
  if (!formula.ok()) return formula.status();
  Query query;
  for (int i = 0; i < arity; ++i) query.head.push_back(StrCat("x", i));
  query.body = std::move(formula).value();
  // The DML layer always runs at the engine-wide default, which is where
  // the DODB_THREADS override lands; per-query knobs stay internal.
  EvalOptions options;
  options.num_threads = DefaultNumThreads();
  FoEvaluator evaluator(&db, options);
  return evaluator.Evaluate(query);
}

// Where a buffered (transactional) statement's effects go instead of the
// WAL + view maintenance: the write-set op and its captured delta, kept
// index-aligned for replay at commit.
struct TxnBuffer {
  std::vector<storage::WalRecord>* ops;
  std::vector<BaseDelta>* deltas;

  void Push(storage::WalRecord op, BaseDelta delta) {
    ops->push_back(std::move(op));
    deltas->push_back(std::move(delta));
  }
};

// Runs view maintenance for a committed base change and renders the result
// as a summary suffix: empty on success (or nothing to do), a warning when
// some view's maintenance failed — the DML itself is already durable and
// applied, and the failed views are stale until refreshed.
std::string MaintainViews(ViewRegistry* views, const BaseDelta& delta,
                          Database* db) {
  if (views == nullptr ||
      (delta.inserted.empty() && delta.deleted.empty())) {
    return "";
  }
  Status status = views->ApplyDelta(delta, db);
  if (status.ok()) return "";
  return StrCat(" (warning: view maintenance failed: ", status.message(),
                "; affected views are stale until recomputed)");
}

Result<std::string> Create(Database* db, storage::StorageEngine* engine,
                           TxnBuffer* buffer, std::string_view rest) {
  // create <name>(<arity>)
  size_t paren = rest.find('(');
  size_t close = rest.rfind(')');
  if (paren == std::string_view::npos || close == std::string_view::npos ||
      close < paren) {
    return Status::ParseError("usage: create <name>(<arity>)");
  }
  std::string name(StripWhitespace(rest.substr(0, paren)));
  if (!IsIdentifier(name)) {
    return Status::ParseError(StrCat("bad relation name '", name, "'"));
  }
  Result<Rational> arity = Rational::FromString(
      rest.substr(paren + 1, close - paren - 1));
  if (!arity.ok() || !arity.value().is_integer() ||
      arity.value() < Rational(0) || arity.value() > Rational(16)) {
    return Status::ParseError("arity must be an integer in 0..16");
  }
  int k = static_cast<int>(arity.value().num().ToInt64().value());
  if (db->HasRelation(name)) {
    return Status::InvalidArgument(StrCat("relation '", name,
                                          "' already exists"));
  }
  if (buffer != nullptr) {
    storage::WalRecord op;
    op.type = storage::WalRecordType::kCreateRelation;
    op.name = name;
    op.arity = k;
    buffer->Push(std::move(op), BaseDelta{});
  } else if (engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogCreate(name, k));
  }
  DODB_RETURN_IF_ERROR(db->AddRelation(name, GeneralizedRelation(k)));
  return StrCat("created ", name, "/", k);
}

Result<std::string> Drop(Database* db, storage::StorageEngine* engine,
                         ViewRegistry* views, TxnBuffer* buffer,
                         std::string_view rest) {
  std::string name(StripWhitespace(rest));
  if (!db->HasRelation(name)) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  if (views != nullptr) {
    if (views->IsView(name)) {
      return Status::InvalidArgument(
          StrCat("'", name, "' is a materialized view; use \\view drop"));
    }
    if (views->DependsOn(name)) {
      return Status::InvalidArgument(
          StrCat("relation '", name,
                 "' is read by a materialized view; drop the view first"));
    }
  }
  if (buffer != nullptr) {
    storage::WalRecord op;
    op.type = storage::WalRecordType::kDropRelation;
    op.name = name;
    buffer->Push(std::move(op), BaseDelta{});
  } else if (engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogDrop(name));
  }
  db->RemoveRelation(name);
  return StrCat("dropped ", name);
}

Result<std::string> Insert(Database* db, storage::StorageEngine* engine,
                           ViewRegistry* views, TxnBuffer* buffer,
                           std::string_view rest) {
  // insert into <name> <formula>
  std::string_view into = NextWord(&rest);
  if (into != "into") {
    return Status::ParseError("usage: insert into <name> <formula>");
  }
  std::string name(NextWord(&rest));
  const GeneralizedRelation* rel = db->FindRelation(name);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  if (views != nullptr && views->IsView(name)) {
    return Status::InvalidArgument(
        StrCat("'", name,
               "' is a materialized view; insert into its base relations"));
  }
  if (rest.empty()) {
    return Status::ParseError("insert needs a formula");
  }
  Result<GeneralizedRelation> addition =
      EvalCondition(*db, rel->arity(), rest);
  if (!addition.ok()) return addition.status();
  // Log the batch, not the merged result: replay re-unions it into the
  // relation's recovered state, reproducing exactly the merge below. In
  // buffered mode the same batch op joins the write set instead.
  if (buffer == nullptr && engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogInsert(name, addition.value()));
  }
  // The same merge algebra::Union performs (replay depends on that), but
  // capturing the statement's structural delta tuple by tuple instead of
  // diffing whole relations afterwards. Additions subsumed by stored tuples
  // contribute nothing; stored tuples displaced by a subsuming addition are
  // elided from the delta (the inserted tuple covers every derivation the
  // displaced one fed — dominated-delete elision) but poison support-mask
  // exactness, which the registry tracks via base_displaced.
  const bool track = views != nullptr && views->DependsOn(name);
  GeneralizedRelation merged = *rel;
  BaseDelta delta;
  delta.relation = name;
  {
    GuardTicker ticker(CurrentQueryGuard(), GuardSite::kAlgebraMaterialize,
                       64);
    std::vector<GeneralizedTuple> displaced;
    for (const GeneralizedTuple& tuple : addition.value().tuples()) {
      if (!ticker.Tick()) break;
      displaced.clear();
      bool inserted = merged.AddCanonicalTupleCaptured(tuple, &displaced);
      if (track && inserted) delta.inserted.push_back(tuple);
      if (!displaced.empty()) delta.base_displaced = true;
    }
  }
  size_t added = merged.tuple_count();
  db->SetRelation(name, std::move(merged));
  if (buffer != nullptr) {
    storage::WalRecord op;
    op.type = storage::WalRecordType::kInsertTuples;
    op.name = name;
    op.relation = std::move(addition).value();
    buffer->Push(std::move(op), std::move(delta));
    return StrCat("insert buffered: ", name, " now has ", added,
                  " generalized tuples (uncommitted)");
  }
  std::string warning = MaintainViews(views, delta, db);
  return StrCat("insert ok: ", name, " now has ", added,
                " generalized tuples", warning);
}

Result<std::string> Delete(Database* db, storage::StorageEngine* engine,
                           ViewRegistry* views, TxnBuffer* buffer,
                           std::string_view rest) {
  // delete from <name> where <formula>
  std::string_view from = NextWord(&rest);
  if (from != "from") {
    return Status::ParseError("usage: delete from <name> where <formula>");
  }
  std::string name(NextWord(&rest));
  const GeneralizedRelation* rel = db->FindRelation(name);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  if (views != nullptr && views->IsView(name)) {
    return Status::InvalidArgument(
        StrCat("'", name,
               "' is a materialized view; delete from its base relations"));
  }
  std::string_view where = NextWord(&rest);
  if (where != "where" || rest.empty()) {
    return Status::ParseError("usage: delete from <name> where <formula>");
  }
  Result<GeneralizedRelation> removal =
      EvalCondition(*db, rel->arity(), rest);
  if (!removal.ok()) return removal.status();
  GeneralizedRelation remaining = algebra::Difference(*rel, removal.value());
  if (buffer == nullptr && engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogSet(name, remaining));
  }
  // A semantic delete reshapes tuples (surviving regions re-canonicalize),
  // so the statement's structural delta has both directions: old ∖ new are
  // removals the DRed pass propagates, new ∖ old are fresh canonical forms
  // the insert pipeline propagates. The pre-statement relation rides along
  // as a COW snapshot — the over-delete waves fire against it.
  const bool track = views != nullptr && views->DependsOn(name);
  BaseDelta delta;
  delta.relation = name;
  if (track) {
    GeneralizedRelation removed = StructuralTupleDifference(*rel, remaining);
    for (const GeneralizedTuple& tuple : removed.tuples()) {
      delta.deleted.push_back(tuple);
    }
    GeneralizedRelation reshaped = StructuralTupleDifference(remaining, *rel);
    for (const GeneralizedTuple& tuple : reshaped.tuples()) {
      delta.inserted.push_back(tuple);
    }
    delta.old_relation = std::make_unique<GeneralizedRelation>(*rel);
  }
  size_t left = remaining.tuple_count();
  if (buffer != nullptr) {
    storage::WalRecord op;
    op.type = storage::WalRecordType::kSetRelation;
    op.name = name;
    op.relation = remaining;
    db->SetRelation(name, std::move(remaining));
    buffer->Push(std::move(op), std::move(delta));
    return StrCat("delete buffered: ", name, " now has ", left,
                  " generalized tuples (uncommitted)");
  }
  db->SetRelation(name, std::move(remaining));
  std::string warning = MaintainViews(views, delta, db);
  return StrCat("delete ok: ", name, " now has ", left,
                " generalized tuples", warning);
}

Result<std::string> Dispatch(Database* db, std::string_view text,
                             storage::StorageEngine* engine,
                             ViewRegistry* views, TxnBuffer* buffer) {
  DODB_CHECK(db != nullptr);
  std::string_view rest = StripWhitespace(text);
  if (!rest.empty() && rest.back() == ';') rest.remove_suffix(1);
  std::string_view verb = NextWord(&rest);
  if (verb == "create") return Create(db, engine, buffer, rest);
  if (verb == "drop") return Drop(db, engine, views, buffer, rest);
  if (verb == "insert") return Insert(db, engine, views, buffer, rest);
  if (verb == "delete") return Delete(db, engine, views, buffer, rest);
  return Status::ParseError(
      StrCat("unknown command '", verb,
             "' (expected create/drop/insert/delete)"));
}

}  // namespace

Result<std::string> ExecuteCommand(Database* db, std::string_view text) {
  return ExecuteCommand(db, text, nullptr, nullptr);
}

Result<std::string> ExecuteCommand(Database* db, std::string_view text,
                                   storage::StorageEngine* engine) {
  return ExecuteCommand(db, text, engine, nullptr);
}

Result<std::string> ExecuteCommand(Database* db, std::string_view text,
                                   storage::StorageEngine* engine,
                                   ViewRegistry* views) {
  return Dispatch(db, text, engine, views, nullptr);
}

Result<std::string> ExecuteCommandBuffered(
    Database* workspace, std::string_view text, ViewRegistry* views,
    std::vector<storage::WalRecord>* ops, std::vector<BaseDelta>* deltas) {
  DODB_CHECK(ops != nullptr && deltas != nullptr);
  TxnBuffer buffer{ops, deltas};
  return Dispatch(workspace, text, nullptr, views, &buffer);
}

}  // namespace dodb
