#include "io/commands.h"

#include <cctype>
#include <vector>

#include "algebra/relational_ops.h"
#include "core/check.h"
#include "core/str_util.h"
#include "core/thread_pool.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "storage/storage_engine.h"

namespace dodb {

namespace {

// Splits off the first whitespace-delimited word.
std::string_view NextWord(std::string_view* text) {
  *text = StripWhitespace(*text);
  size_t end = 0;
  while (end < text->size() &&
         !std::isspace(static_cast<unsigned char>((*text)[end]))) {
    ++end;
  }
  std::string_view word = text->substr(0, end);
  text->remove_prefix(end);
  *text = StripWhitespace(*text);
  return word;
}

bool IsIdentifier(std::string_view word) {
  if (word.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(word[0])) && word[0] != '_') {
    return false;
  }
  for (char c : word) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

// Evaluates `formula_text` over the columns x0..x(arity-1) of `db`.
Result<GeneralizedRelation> EvalCondition(const Database& db, int arity,
                                          std::string_view formula_text) {
  Result<FormulaPtr> formula = FoParser::ParseFormula(formula_text);
  if (!formula.ok()) return formula.status();
  Query query;
  for (int i = 0; i < arity; ++i) query.head.push_back(StrCat("x", i));
  query.body = std::move(formula).value();
  // The DML layer always runs at the engine-wide default, which is where
  // the DODB_THREADS override lands; per-query knobs stay internal.
  EvalOptions options;
  options.num_threads = DefaultNumThreads();
  FoEvaluator evaluator(&db, options);
  return evaluator.Evaluate(query);
}

Result<std::string> Create(Database* db, storage::StorageEngine* engine,
                           std::string_view rest) {
  // create <name>(<arity>)
  size_t paren = rest.find('(');
  size_t close = rest.rfind(')');
  if (paren == std::string_view::npos || close == std::string_view::npos ||
      close < paren) {
    return Status::ParseError("usage: create <name>(<arity>)");
  }
  std::string name(StripWhitespace(rest.substr(0, paren)));
  if (!IsIdentifier(name)) {
    return Status::ParseError(StrCat("bad relation name '", name, "'"));
  }
  Result<Rational> arity = Rational::FromString(
      rest.substr(paren + 1, close - paren - 1));
  if (!arity.ok() || !arity.value().is_integer() ||
      arity.value() < Rational(0) || arity.value() > Rational(16)) {
    return Status::ParseError("arity must be an integer in 0..16");
  }
  int k = static_cast<int>(arity.value().num().ToInt64().value());
  if (db->HasRelation(name)) {
    return Status::InvalidArgument(StrCat("relation '", name,
                                          "' already exists"));
  }
  if (engine != nullptr) DODB_RETURN_IF_ERROR(engine->LogCreate(name, k));
  DODB_RETURN_IF_ERROR(db->AddRelation(name, GeneralizedRelation(k)));
  return StrCat("created ", name, "/", k);
}

Result<std::string> Drop(Database* db, storage::StorageEngine* engine,
                         std::string_view rest) {
  std::string name(StripWhitespace(rest));
  if (!db->HasRelation(name)) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  if (engine != nullptr) DODB_RETURN_IF_ERROR(engine->LogDrop(name));
  db->RemoveRelation(name);
  return StrCat("dropped ", name);
}

Result<std::string> Insert(Database* db, storage::StorageEngine* engine,
                           std::string_view rest) {
  // insert into <name> <formula>
  std::string_view into = NextWord(&rest);
  if (into != "into") {
    return Status::ParseError("usage: insert into <name> <formula>");
  }
  std::string name(NextWord(&rest));
  const GeneralizedRelation* rel = db->FindRelation(name);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  if (rest.empty()) {
    return Status::ParseError("insert needs a formula");
  }
  Result<GeneralizedRelation> addition =
      EvalCondition(*db, rel->arity(), rest);
  if (!addition.ok()) return addition.status();
  // Log the batch, not the merged result: replay re-unions it into the
  // relation's recovered state, reproducing exactly the merge below.
  if (engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogInsert(name, addition.value()));
  }
  GeneralizedRelation merged = algebra::Union(*rel, addition.value());
  size_t added = merged.tuple_count();
  db->SetRelation(name, std::move(merged));
  return StrCat("insert ok: ", name, " now has ", added,
                " generalized tuples");
}

Result<std::string> Delete(Database* db, storage::StorageEngine* engine,
                           std::string_view rest) {
  // delete from <name> where <formula>
  std::string_view from = NextWord(&rest);
  if (from != "from") {
    return Status::ParseError("usage: delete from <name> where <formula>");
  }
  std::string name(NextWord(&rest));
  const GeneralizedRelation* rel = db->FindRelation(name);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("no relation '", name, "'"));
  }
  std::string_view where = NextWord(&rest);
  if (where != "where" || rest.empty()) {
    return Status::ParseError("usage: delete from <name> where <formula>");
  }
  Result<GeneralizedRelation> removal =
      EvalCondition(*db, rel->arity(), rest);
  if (!removal.ok()) return removal.status();
  GeneralizedRelation remaining = algebra::Difference(*rel, removal.value());
  if (engine != nullptr) {
    DODB_RETURN_IF_ERROR(engine->LogSet(name, remaining));
  }
  size_t left = remaining.tuple_count();
  db->SetRelation(name, std::move(remaining));
  return StrCat("delete ok: ", name, " now has ", left,
                " generalized tuples");
}

}  // namespace

Result<std::string> ExecuteCommand(Database* db, std::string_view text) {
  return ExecuteCommand(db, text, nullptr);
}

Result<std::string> ExecuteCommand(Database* db, std::string_view text,
                                   storage::StorageEngine* engine) {
  DODB_CHECK(db != nullptr);
  std::string_view rest = StripWhitespace(text);
  if (!rest.empty() && rest.back() == ';') rest.remove_suffix(1);
  std::string_view verb = NextWord(&rest);
  if (verb == "create") return Create(db, engine, rest);
  if (verb == "drop") return Drop(db, engine, rest);
  if (verb == "insert") return Insert(db, engine, rest);
  if (verb == "delete") return Delete(db, engine, rest);
  return Status::ParseError(
      StrCat("unknown command '", verb,
             "' (expected create/drop/insert/delete)"));
}

}  // namespace dodb
