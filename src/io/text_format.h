#ifndef DODB_IO_TEXT_FORMAT_H_
#define DODB_IO_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "core/status.h"
#include "io/database.h"

namespace dodb {

/// Human-readable text format for constraint databases (.cdb):
///
///   # comment
///   relation S(x) {
///     x >= 0 and x <= 2;
///     x >= 5 and x <= 8;
///   }
///   relation E(x, y) {
///     x = 1 and y = 2;
///   }
///
/// Each ';'-terminated conjunction is one generalized tuple ("true" denotes
/// the all-true tuple); a relation with no tuples is empty. Terms are the
/// declared column variables and rational literals.
Result<Database> ParseDatabase(std::string_view text);

/// Canonical text rendering (column names x0, x1, ...): each tuple's full
/// closure-canonical atom list. ParseDatabase(FormatDatabase(db)) rebuilds
/// `db` exactly (StructurallyEquals), because canonicalization is idempotent
/// on the emitted form.
std::string FormatDatabase(const Database& db);

/// File variants.
Result<Database> LoadDatabaseFile(const std::string& path);
Status SaveDatabaseFile(const Database& db, const std::string& path);

}  // namespace dodb

#endif  // DODB_IO_TEXT_FORMAT_H_
