#ifndef DODB_IO_COMMANDS_H_
#define DODB_IO_COMMANDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "io/database.h"

namespace dodb {

namespace storage {
class StorageEngine;
struct WalRecord;
}  // namespace storage

class ViewRegistry;
struct BaseDelta;

/// Data-manipulation commands over a constraint database. Because relations
/// are (possibly infinite) pointsets, inserts and deletes take *formulas*,
/// not rows — and the formulas may reference other relations:
///
///   create parcels(2)
///   insert into parcels x0 >= 0 and x0 <= 4 and x1 >= 0 and x1 <= 2
///   insert into parcels exists y (survey(x0, x1, y) and y > 10)
///   delete from parcels where x0 > 3
///   drop parcels
///
/// Column variables are x0..x(k-1). Insert unions { (x0..) | formula } into
/// the relation; delete subtracts { (x0..) | formula } (set difference over
/// infinite sets, in closed form). Returns a one-line human summary.
Result<std::string> ExecuteCommand(Database* db, std::string_view text);

/// ExecuteCommand with write-ahead logging: when `engine` is non-null, the
/// logical operation is logged durably BEFORE the in-memory catalog mutates
/// (storage/storage_engine.h's discipline). A logging failure aborts the
/// command — the catalog is untouched and the error is returned, so an
/// acknowledged command is always recoverable.
Result<std::string> ExecuteCommand(Database* db, std::string_view text,
                                   storage::StorageEngine* engine);

/// ExecuteCommand with view maintenance: when `views` is non-null, DML is
/// refused on materialized-view names (and dropping a relation some view
/// reads is refused), the merge/difference captures the statement's
/// structural delta, and every dependent view is maintained incrementally
/// after the base change commits (datalog/view_maintenance.h). A
/// maintenance failure does NOT fail the DML — the base change is already
/// durable; the affected view is stale and the summary carries a warning.
Result<std::string> ExecuteCommand(Database* db, std::string_view text,
                                   storage::StorageEngine* engine,
                                   ViewRegistry* views);

/// Transactional (buffered) DML: executes one command against `workspace`
/// — a transaction's private snapshot copy — WITHOUT touching the WAL or
/// running view maintenance. Instead the statement's logical operation is
/// appended to `ops` (the write set the TransactionManager logs as one
/// atomic kTxnCommit group) and its structural view delta to `deltas`
/// (applied at commit, after the matching op lands on the authoritative
/// catalog). `ops` and `deltas` stay index-aligned: op i's delta is
/// deltas[i], empty when no registered view reads the relation. `views` is
/// consulted only for refusals (DML on a view name, dropping a relation a
/// view reads) and for the delta-tracking decision; it is not mutated.
Result<std::string> ExecuteCommandBuffered(Database* workspace,
                                           std::string_view text,
                                           ViewRegistry* views,
                                           std::vector<storage::WalRecord>* ops,
                                           std::vector<BaseDelta>* deltas);

}  // namespace dodb

#endif  // DODB_IO_COMMANDS_H_
