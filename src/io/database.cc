#include "io/database.h"

#include <set>

#include "core/str_util.h"

namespace dodb {

Status Database::AddRelation(const std::string& name,
                             GeneralizedRelation relation) {
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  if (!inserted) {
    return Status::InvalidArgument(StrCat("relation '", name,
                                          "' already exists"));
  }
  return Status::Ok();
}

void Database::SetRelation(const std::string& name,
                           GeneralizedRelation relation) {
  relations_.insert_or_assign(name, std::move(relation));
}

bool Database::RemoveRelation(const std::string& name) {
  return relations_.erase(name) > 0;
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

const GeneralizedRelation* Database::FindRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::vector<Rational> Database::AllConstants() const {
  std::set<Rational> constants;
  for (const auto& [name, rel] : relations_) {
    for (const Rational& c : rel.Constants()) constants.insert(c);
  }
  return std::vector<Rational>(constants.begin(), constants.end());
}

StandardEncoding Database::BuildEncoding() const {
  std::vector<const GeneralizedRelation*> rels;
  rels.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) rels.push_back(&rel);
  return StandardEncoding::ForDatabase(rels);
}

Database Database::Encoded() const {
  StandardEncoding encoding = BuildEncoding();
  Database out;
  for (const auto& [name, rel] : relations_) {
    out.SetRelation(name, encoding.EncodeRelation(rel));
  }
  return out;
}

Result<std::string> Database::CanonicalSignature(uint64_t limit) const {
  StandardEncoding encoding = BuildEncoding();
  std::string out;
  for (const auto& [name, rel] : relations_) {
    Result<std::string> signature = encoding.Signature(rel, limit);
    if (!signature.ok()) return signature.status();
    out += name;
    out += '=';
    out += signature.value();
    out += '\n';
  }
  return out;
}

Database Database::Mapped(const MonotoneMap& map) const {
  Database out;
  for (const auto& [name, rel] : relations_) {
    out.SetRelation(name, map.ApplyToRelation(rel));
  }
  return out;
}

}  // namespace dodb
