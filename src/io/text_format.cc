#include "io/text_format.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "core/str_util.h"
#include "fo/lexer.h"

namespace dodb {

namespace {

class DatabaseParser {
 public:
  explicit DatabaseParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Database> Parse() {
    Database db;
    while (Peek().kind != TokenKind::kEnd) {
      DODB_RETURN_IF_ERROR(ParseRelation(&db));
    }
    return db;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t index = pos_ + static_cast<size_t>(ahead);
    if (index >= tokens_.size()) return tokens_.back();
    return tokens_[index];
  }
  const Token& Advance() {
    const Token& token = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return token;
  }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  Status ErrorHere(const std::string& message) const {
    const Token& token = Peek();
    return Status::ParseError(StrCat(message, " (line ", token.line,
                                     ", column ", token.column, ")"));
  }
  Status Expect(TokenKind kind, const char* where) {
    if (Peek().kind != kind) {
      return ErrorHere(StrCat("expected ", TokenKindName(kind), " in ",
                              where, ", found ", Peek().Describe()));
    }
    Advance();
    return Status::Ok();
  }

  Status ParseRelation(Database* db) {
    if (Peek().kind != TokenKind::kIdentifier ||
        Peek().text != "relation") {
      return ErrorHere(
          StrCat("expected 'relation', found ", Peek().Describe()));
    }
    Advance();
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected relation name");
    }
    std::string name = Advance().text;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "relation header"));
    std::vector<std::string> columns;
    if (Peek().kind != TokenKind::kRParen) {
      do {
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorHere("expected column name");
        }
        columns.push_back(Advance().text);
      } while (Match(TokenKind::kComma));
    }
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "relation header"));
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "relation body"));

    GeneralizedRelation rel(static_cast<int>(columns.size()));
    while (!Match(TokenKind::kRBrace)) {
      Result<GeneralizedTuple> tuple = ParseTuple(columns);
      if (!tuple.ok()) return tuple.status();
      DODB_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "tuple"));
      rel.AddTuple(std::move(tuple).value());
    }
    if (db->HasRelation(name)) {
      return Status::InvalidArgument(
          StrCat("duplicate relation '", name, "'"));
    }
    db->SetRelation(name, std::move(rel));
    return Status::Ok();
  }

  Result<GeneralizedTuple> ParseTuple(
      const std::vector<std::string>& columns) {
    GeneralizedTuple tuple(static_cast<int>(columns.size()));
    if (Match(TokenKind::kKwTrue)) return tuple;
    do {
      Result<Term> lhs = ParseTerm(columns);
      if (!lhs.ok()) return lhs.status();
      RelOp op;
      switch (Peek().kind) {
        case TokenKind::kLt:
          op = RelOp::kLt;
          break;
        case TokenKind::kLe:
          op = RelOp::kLe;
          break;
        case TokenKind::kEq:
          op = RelOp::kEq;
          break;
        case TokenKind::kNeq:
          op = RelOp::kNeq;
          break;
        case TokenKind::kGe:
          op = RelOp::kGe;
          break;
        case TokenKind::kGt:
          op = RelOp::kGt;
          break;
        default:
          return ErrorHere(StrCat("expected comparison operator, found ",
                                  Peek().Describe()));
      }
      Advance();
      Result<Term> rhs = ParseTerm(columns);
      if (!rhs.ok()) return rhs.status();
      tuple.AddAtom(
          DenseAtom(std::move(lhs).value(), op, std::move(rhs).value()));
    } while (Match(TokenKind::kKwAnd));
    return tuple;
  }

  Result<Term> ParseTerm(const std::vector<std::string>& columns) {
    if (Peek().kind == TokenKind::kIdentifier) {
      const std::string& name = Peek().text;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == name) {
          Advance();
          return Term::Var(static_cast<int>(i));
        }
      }
      return ErrorHere(StrCat("unknown column '", name, "'"));
    }
    bool negate = Match(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kNumber) {
      return ErrorHere(StrCat("expected term, found ", Peek().Describe()));
    }
    Result<Rational> value = Rational::FromString(Advance().text);
    if (!value.ok()) return value.status();
    Rational v = std::move(value).value();
    return Term::Const(negate ? -v : v);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Database> ParseDatabase(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  return DatabaseParser(std::move(tokens).value()).Parse();
}

std::string FormatDatabase(const Database& db) {
  std::ostringstream out;
  for (const std::string& name : db.RelationNames()) {
    const GeneralizedRelation* rel = db.FindRelation(name);
    std::vector<std::string> columns;
    columns.reserve(rel->arity());
    for (int i = 0; i < rel->arity(); ++i) {
      columns.push_back(StrCat("x", i));
    }
    out << "relation " << name << "(" << StrJoin(columns, ", ") << ") {\n";
    for (const GeneralizedTuple& tuple : rel->tuples()) {
      // Emit the stored canonical atom list, not Minimized(): minimization
      // can drop var-const atoms whose constants then vanish from the
      // reparsed tuple's closure, so Format∘Parse would not be the identity
      // on relation structure. Closure is idempotent, so re-parsing the
      // canonical form reproduces the tuple exactly.
      out << "  " << tuple.ToString(&columns) << ";\n";
    }
    out << "}\n";
  }
  return out.str();
}

Result<Database> LoadDatabaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDatabase(buffer.str());
}

Status SaveDatabaseFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(StrCat("cannot write '", path, "'"));
  }
  out << FormatDatabase(db);
  if (!out) {
    return Status::Internal(StrCat("write to '", path, "' failed"));
  }
  return Status::Ok();
}

}  // namespace dodb
