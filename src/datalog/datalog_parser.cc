#include "datalog/datalog_parser.h"

#include "core/str_util.h"
#include "fo/lexer.h"

namespace dodb {

namespace {
bool IsRelOpToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kEq:
    case TokenKind::kNeq:
    case TokenKind::kGe:
    case TokenKind::kGt:
      return true;
    default:
      return false;
  }
}

RelOp TokenToRelOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
      return RelOp::kLt;
    case TokenKind::kLe:
      return RelOp::kLe;
    case TokenKind::kEq:
      return RelOp::kEq;
    case TokenKind::kNeq:
      return RelOp::kNeq;
    case TokenKind::kGe:
      return RelOp::kGe;
    default:
      return RelOp::kGt;
  }
}
}  // namespace

Result<DatalogProgram> DatalogParser::ParseProgram(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  DatalogParser parser(std::move(tokens).value());
  DatalogProgram program;
  while (parser.Peek().kind != TokenKind::kEnd) {
    if (parser.Match(TokenKind::kQueryPrefix)) {
      DatalogQuery query;
      do {
        Result<DatalogLiteral> literal = parser.Literal();
        if (!literal.ok()) return literal.status();
        query.body.push_back(std::move(literal).value());
      } while (parser.Match(TokenKind::kComma));
      DODB_RETURN_IF_ERROR(parser.Expect(TokenKind::kDot, "query"));
      program.queries.push_back(std::move(query));
      continue;
    }
    Result<DatalogRule> rule = parser.Rule();
    if (!rule.ok()) return rule.status();
    program.rules.push_back(std::move(rule).value());
  }
  return program;
}

const Token& DatalogParser::Peek(int ahead) const {
  size_t index = pos_ + static_cast<size_t>(ahead);
  if (index >= tokens_.size()) return tokens_.back();
  return tokens_[index];
}

const Token& DatalogParser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool DatalogParser::Match(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Advance();
  return true;
}

Status DatalogParser::Expect(TokenKind kind, const char* where) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", TokenKindName(kind), " in ", where,
                            ", found ", Peek().Describe()));
  }
  Advance();
  return Status::Ok();
}

Status DatalogParser::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  return Status::ParseError(
      StrCat(message, " (line ", token.line, ", column ", token.column, ")"));
}

Result<DatalogRule> DatalogParser::Rule() {
  DatalogRule rule;
  DODB_RETURN_IF_ERROR(Atom(&rule.head, &rule.head_args));
  if (Match(TokenKind::kColonDash)) {
    do {
      Result<DatalogLiteral> literal = Literal();
      if (!literal.ok()) return literal.status();
      rule.body.push_back(std::move(literal).value());
    } while (Match(TokenKind::kComma));
  }
  DODB_RETURN_IF_ERROR(Expect(TokenKind::kDot, "rule"));
  return rule;
}

Result<DatalogLiteral> DatalogParser::Literal() {
  DatalogLiteral literal;
  if (Match(TokenKind::kKwNot)) {
    literal.kind = DatalogLiteral::Kind::kRelation;
    literal.negated = true;
    DODB_RETURN_IF_ERROR(Atom(&literal.relation, &literal.args));
    return literal;
  }
  // Relation atom: identifier followed by '('.
  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind == TokenKind::kLParen) {
    literal.kind = DatalogLiteral::Kind::kRelation;
    DODB_RETURN_IF_ERROR(Atom(&literal.relation, &literal.args));
    return literal;
  }
  // Constraint atom.
  literal.kind = DatalogLiteral::Kind::kCompare;
  Result<FoExpr> lhs = Term_();
  if (!lhs.ok()) return lhs.status();
  literal.lhs = std::move(lhs).value();
  if (!IsRelOpToken(Peek().kind)) {
    return ErrorHere(StrCat("expected comparison operator, found ",
                            Peek().Describe()));
  }
  literal.op = TokenToRelOp(Advance().kind);
  Result<FoExpr> rhs = Term_();
  if (!rhs.ok()) return rhs.status();
  literal.rhs = std::move(rhs).value();
  return literal;
}

Status DatalogParser::Atom(std::string* name, std::vector<FoExpr>* args) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere(
        StrCat("expected predicate name, found ", Peek().Describe()));
  }
  *name = Advance().text;
  DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "atom"));
  if (Peek().kind != TokenKind::kRParen) {
    do {
      Result<FoExpr> term = Term_();
      if (!term.ok()) return term.status();
      args->push_back(std::move(term).value());
    } while (Match(TokenKind::kComma));
  }
  return Expect(TokenKind::kRParen, "atom");
}

Result<FoExpr> DatalogParser::Term_() {
  if (Peek().kind == TokenKind::kIdentifier) {
    return FoExpr::Variable(Advance().text);
  }
  bool negate = Match(TokenKind::kMinus);
  if (Peek().kind == TokenKind::kNumber) {
    Result<Rational> value = Rational::FromString(Advance().text);
    if (!value.ok()) return value.status();
    Rational v = std::move(value).value();
    return FoExpr::Constant(negate ? -v : v);
  }
  return ErrorHere(StrCat("expected term, found ", Peek().Describe()));
}

}  // namespace dodb
