#include "datalog/datalog_evaluator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "algebra/relational_ops.h"
#include "constraints/closure_cache.h"
#include "core/check.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "core/thread_pool.h"

namespace dodb {

DatalogEvaluator::DatalogEvaluator(DatalogProgram program, const Database* edb,
                                   DatalogOptions options)
    : program_(std::move(program)), edb_(edb), options_(options) {
  DODB_CHECK(edb != nullptr);
}

namespace {

// Conjunction of body literals as a first-order formula.
FormulaPtr LowerLiterals(const std::vector<DatalogLiteral>& literals) {
  FormulaPtr body;
  for (const DatalogLiteral& literal : literals) {
    FormulaPtr part;
    if (literal.kind == DatalogLiteral::Kind::kCompare) {
      part = MakeCompare(literal.lhs, literal.op, literal.rhs);
    } else {
      part = MakeRelation(literal.relation, literal.args);
      if (literal.negated) part = MakeNot(std::move(part));
    }
    body = body ? MakeAnd(std::move(body), std::move(part)) : std::move(part);
  }
  if (!body) body = MakeBool(true);
  return body;
}

// Lowers a rule body into a first-order formula, existentially closing the
// variables that do not occur in the head.
FormulaPtr LowerBody(const DatalogRule& rule) {
  FormulaPtr body = LowerLiterals(rule.body);

  std::set<std::string> head_vars;
  for (const FoExpr& arg : rule.head_args) {
    if (arg.IsSimpleVar()) head_vars.insert(arg.VarName());
  }
  std::vector<std::string> closed;
  for (const std::string& var : body->FreeVars()) {
    if (head_vars.count(var) == 0) closed.push_back(var);
  }
  if (!closed.empty()) body = MakeExists(std::move(closed), std::move(body));
  return body;
}

}  // namespace

Result<GeneralizedRelation> DatalogEvaluator::EvalRule(
    const DatalogRule& rule, const Database& snapshot) {
  Query query;
  query.body = LowerBody(rule);
  // Head variables in first-occurrence order.
  for (const FoExpr& arg : rule.head_args) {
    if (arg.IsSimpleVar() &&
        std::find(query.head.begin(), query.head.end(), arg.VarName()) ==
            query.head.end()) {
      query.head.push_back(arg.VarName());
    }
  }
  FoEvaluator evaluator(&snapshot, options_.eval_options);
  Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
  if (!answer.ok()) return answer;

  // Widen the answer over distinct variables to the full head arity,
  // duplicating variable columns and pinning constant arguments.
  int arity = static_cast<int>(rule.head_args.size());
  std::vector<int> mapping(query.head.size(), -1);
  std::vector<int> first_column(query.head.size(), -1);
  for (int i = 0; i < arity; ++i) {
    const FoExpr& arg = rule.head_args[i];
    if (!arg.IsSimpleVar()) continue;
    int v = static_cast<int>(
        std::find(query.head.begin(), query.head.end(), arg.VarName()) -
        query.head.begin());
    if (first_column[v] < 0) {
      first_column[v] = i;
      mapping[v] = i;
    }
  }
  GeneralizedRelation widened =
      algebra::Rename(answer.value(), mapping, arity);
  for (int i = 0; i < arity; ++i) {
    const FoExpr& arg = rule.head_args[i];
    if (arg.IsSimpleVar()) {
      int v = static_cast<int>(
          std::find(query.head.begin(), query.head.end(), arg.VarName()) -
          query.head.begin());
      if (first_column[v] != i) {
        widened = algebra::Select(
            widened, DenseAtom(Term::Var(i), RelOp::kEq,
                               Term::Var(first_column[v])));
      }
    } else {
      widened = algebra::Select(
          widened,
          DenseAtom(Term::Var(i), RelOp::kEq, Term::Const(arg.constant)));
    }
  }
  return widened;
}

std::optional<std::vector<size_t>> DatalogEvaluator::PositiveIdbOccurrences(
    const DatalogRule& rule, const std::map<std::string, int>& idb_arities) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const DatalogLiteral& literal = rule.body[i];
    if (literal.kind != DatalogLiteral::Kind::kRelation) continue;
    if (idb_arities.count(literal.relation) == 0) continue;
    if (literal.negated) return std::nullopt;
    positions.push_back(i);
  }
  return positions;
}

GeneralizedRelation StructuralTupleDifference(const GeneralizedRelation& next,
                                              const GeneralizedRelation& prev) {
  GeneralizedRelation out(next.arity());
  size_t i = 0;
  const auto& old_tuples = prev.tuples();
  for (const GeneralizedTuple& tuple : next.tuples()) {
    while (i < old_tuples.size() && old_tuples[i].Compare(tuple) < 0) ++i;
    if (i < old_tuples.size() && old_tuples[i].Compare(tuple) == 0) continue;
    // Stored tuples are already canonical; skip the closure re-run.
    out.AddCanonicalTuple(tuple);
  }
  return out;
}

namespace {

constexpr char kDeltaRelationName[] = "__dodb_delta";

}  // namespace

// Populates and closes the lazily cached constraint network of every stored
// tuple — and, when indexing is on, each tuple's signature and each
// relation's constraint-signature index. Copies of these tuples and
// relations made inside pool workers share the caches, and all of them are
// read-only once warm — so after warming, concurrent rule evaluations may
// read the snapshot freely, and every job in the round probes the one
// snapshot index instead of rebuilding its own.
static void WarmRelationCaches(const GeneralizedRelation& rel) {
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    tuple.IsSatisfiable();
    if (IndexingEnabled()) tuple.CachedSignature();
  }
  if (IndexingEnabled()) {
    rel.Index();
    // Fault in the shard partition too, so concurrent shard-pair jobs read
    // a warm structure instead of serializing on the lazy-build mutex.
    if (ShardingEnabled()) rel.Index().Shards();
  }
}

void WarmDatabaseCaches(const Database& db) {
  for (const std::string& name : db.RelationNames()) {
    WarmRelationCaches(*db.FindRelation(name));
  }
}

namespace {

// Writes the engine-counter delta covering its lifetime into `out`.
class CounterDeltaScope {
 public:
  explicit CounterDeltaScope(EvalCounterSnapshot* out)
      : start_(EvalCounters::Snapshot()), out_(out) {}
  ~CounterDeltaScope() { *out_ = EvalCounters::Snapshot() - start_; }

 private:
  EvalCounterSnapshot start_;
  EvalCounterSnapshot* out_;
};

// One unit of work in a fixpoint round: a rule fired naively against the
// full snapshot, or (semi-naive) one positive IDB occurrence of a rule
// redirected to the previous round's delta.
struct RuleJob {
  const DatalogRule* rule = nullptr;
  const GeneralizedRelation* delta = nullptr;  // null = naive firing
  size_t occurrence = 0;
};

}  // namespace

Result<GeneralizedRelation> DatalogEvaluator::FireRule(
    size_t rule_index, const Database& snapshot,
    std::optional<size_t> redirect_occurrence,
    std::string_view redirect_relation) {
  DODB_CHECK(rule_index < program_.rules.size());
  const DatalogRule& rule = program_.rules[rule_index];
  if (!redirect_occurrence.has_value()) return EvalRule(rule, snapshot);
  DODB_CHECK(*redirect_occurrence < rule.body.size());
  DatalogRule focused = rule;
  focused.body[*redirect_occurrence].relation = std::string(redirect_relation);
  return EvalRule(focused, snapshot);
}

Result<GeneralizedRelation> DatalogEvaluator::FireRule(
    size_t rule_index, const Database& snapshot,
    const std::vector<std::pair<size_t, std::string>>& redirects) {
  DODB_CHECK(rule_index < program_.rules.size());
  const DatalogRule& rule = program_.rules[rule_index];
  if (redirects.empty()) return EvalRule(rule, snapshot);
  DatalogRule focused = rule;
  for (const auto& [occurrence, relation] : redirects) {
    DODB_CHECK(occurrence < focused.body.size());
    focused.body[occurrence].relation = relation;
  }
  return EvalRule(focused, snapshot);
}

Status DatalogEvaluator::RunToFixpoint(
    const std::vector<const DatalogRule*>& rules, Database* idb) {
  std::map<std::string, int> idb_arities = program_.IdbArities();
  // Deltas from the previous round (only consulted when semi-naive).
  std::map<std::string, GeneralizedRelation> delta_in;
  bool first_round = true;

  while (true) {
    if (options_.max_iterations != 0 &&
        iterations_ >= options_.max_iterations) {
      return Status::ResourceExhausted(
          StrCat("datalog fixpoint did not stabilize within ",
                 options_.max_iterations, " rounds"));
    }
    if (options_.max_fix_rounds != 0 &&
        iterations_ >= options_.max_fix_rounds) {
      return Status::ResourceExhausted(
          StrCat("datalog fixpoint did not stabilize within the round "
                 "budget of ",
                 options_.max_fix_rounds));
    }
    // One guard checkpoint per round: a deadline or budget hit between
    // rounds aborts here; mid-round trips surface from the rule jobs.
    if (QueryGuard* guard = CurrentQueryGuard();
        guard != nullptr && !guard->Checkpoint(GuardSite::kDatalogRound)) {
      return guard->status();
    }
    ++iterations_;

    // Snapshot: EDB plus the current IDB.
    Database snapshot = *edb_;
    for (const std::string& name : idb->RelationNames()) {
      snapshot.SetRelation(name, *idb->FindRelation(name));
    }

    std::map<std::string, GeneralizedRelation> derived_by_head;
    auto merge_derived = [&derived_by_head](const std::string& head,
                                            GeneralizedRelation rel) {
      auto it = derived_by_head.find(head);
      if (it == derived_by_head.end()) {
        derived_by_head.emplace(head, std::move(rel));
      } else {
        it->second = algebra::Union(it->second, rel);
      }
    };

    // Plan the round's independent firings up front (in rule order), then
    // evaluate them on the pool and merge sequentially in plan order — the
    // same derivation sequence as the legacy one-rule-at-a-time loop, so
    // the fixpoint trajectory is bit-identical at any thread count.
    std::vector<RuleJob> jobs;
    for (const DatalogRule* rule : rules) {
      std::optional<std::vector<size_t>> positive =
          options_.semi_naive && !first_round
              ? PositiveIdbOccurrences(*rule, idb_arities)
              : std::nullopt;
      if (!positive.has_value()) {
        // Naive: negation present, semi-naive disabled, or first round.
        jobs.push_back(RuleJob{rule, nullptr, 0});
        continue;
      }
      // EDB-only rules (positive->empty()) saturated in round 1: no job.
      // Semi-naive: once per positive IDB occurrence, with that occurrence
      // redirected to the previous round's delta.
      for (size_t occurrence : *positive) {
        const std::string& pred = rule->body[occurrence].relation;
        auto delta_it = delta_in.find(pred);
        if (delta_it == delta_in.end() || delta_it->second.IsEmpty()) {
          continue;
        }
        jobs.push_back(RuleJob{rule, &delta_it->second, occurrence});
      }
    }

    // Install the round's deltas into the shared snapshot under reserved
    // per-predicate names, so each semi-naive job only rewrites its own
    // (small) rule copy instead of deep-copying the whole database.
    for (const auto& [pred, delta] : delta_in) {
      if (!delta.IsEmpty()) {
        snapshot.SetRelation(StrCat(kDeltaRelationName, ":", pred), delta);
      }
    }

    auto eval_job = [&](size_t j) -> Result<GeneralizedRelation> {
      // The shared guard travels to pool workers through eval_options (set
      // by Evaluate), not the thread-local scope — workers don't inherit
      // thread-locals. The nested FoEvaluator re-installs it; this entry
      // checkpoint makes an already-tripped round skip the rule outright.
      if (QueryGuard* guard = options_.eval_options.guard;
          guard != nullptr && !guard->Checkpoint(GuardSite::kDatalogRule)) {
        return guard->status();
      }
      const RuleJob& job = jobs[j];
      if (job.delta == nullptr) return EvalRule(*job.rule, snapshot);
      DatalogRule focused = *job.rule;
      focused.body[job.occurrence].relation =
          StrCat(kDeltaRelationName, ":", focused.body[job.occurrence].relation);
      return EvalRule(focused, snapshot);
    };

    std::vector<Result<GeneralizedRelation>> derived;
    if (!ShouldParallelize(jobs.size())) {
      derived.reserve(jobs.size());
      for (size_t j = 0; j < jobs.size(); ++j) {
        derived.push_back(eval_job(j));
        if (!derived.back().ok()) return derived.back().status();
      }
    } else {
      // Concurrent jobs share the snapshot (which now holds the round's
      // deltas too) read-only; warming makes every shared tuple's closure
      // cache closed (hence read-only) before the first worker touches it.
      WarmDatabaseCaches(snapshot);
      derived = ParallelMap<Result<GeneralizedRelation>>(jobs.size(),
                                                         eval_job);
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      if (!derived[j].ok()) return derived[j].status();
      merge_derived(jobs[j].rule->head, std::move(derived[j]).value());
    }

    bool changed = false;
    std::map<std::string, GeneralizedRelation> delta_out;
    for (auto& [name, rel] : derived_by_head) {
      const GeneralizedRelation* old = idb->FindRelation(name);
      DODB_CHECK(old != nullptr);
      GeneralizedRelation merged = algebra::Union(*old, rel);
      // merged != old exactly when the union inserted a tuple structurally
      // absent from old — and every such tuple survives into the delta (a
      // later subsuming insert is itself new), so the delta scan doubles as
      // the change check.
      GeneralizedRelation delta = StructuralTupleDifference(merged, *old);
      if (!delta.IsEmpty()) {
        changed = true;
        delta_out.emplace(name, std::move(delta));
        idb->SetRelation(name, std::move(merged));
      }
    }
    if (!changed) return Status::Ok();
    delta_in = std::move(delta_out);
    first_round = false;
  }
}

Result<std::vector<std::vector<std::string>>> DatalogEvaluator::Stratify()
    const {
  std::map<std::string, int> arities = program_.IdbArities();
  std::map<std::string, int> stratum;
  for (const auto& [name, arity] : arities) stratum[name] = 0;
  int num_preds = static_cast<int>(arities.size());

  bool changed = true;
  while (changed) {
    changed = false;
    for (const DatalogRule& rule : program_.rules) {
      int& head_stratum = stratum[rule.head];
      for (const DatalogLiteral& literal : rule.body) {
        if (literal.kind != DatalogLiteral::Kind::kRelation) continue;
        auto it = stratum.find(literal.relation);
        if (it == stratum.end()) continue;  // EDB
        int required = it->second + (literal.negated ? 1 : 0);
        if (head_stratum < required) {
          head_stratum = required;
          if (head_stratum > num_preds) {
            return Status::InvalidArgument(
                StrCat("program is not stratifiable: predicate '", rule.head,
                       "' depends negatively on itself through recursion"));
          }
          changed = true;
        }
      }
    }
  }
  int max_stratum = 0;
  for (const auto& [name, s] : stratum) max_stratum = std::max(max_stratum, s);
  std::vector<std::vector<std::string>> strata(max_stratum + 1);
  for (const auto& [name, s] : stratum) strata[s].push_back(name);
  return strata;
}

Result<GeneralizedRelation> DatalogEvaluator::Answer(
    const DatalogQuery& query, const Database& idb) {
  Database snapshot = *edb_;
  for (const std::string& name : idb.RelationNames()) {
    snapshot.SetRelation(name, *idb.FindRelation(name));
  }
  Query fo_query;
  fo_query.head = query.HeadVars();
  fo_query.body = LowerLiterals(query.body);
  FoEvaluator evaluator(&snapshot, options_.eval_options);
  return evaluator.Evaluate(fo_query);
}

Result<Database> DatalogEvaluator::Evaluate() {
  EvalThreadsScope threads(options_.eval_options.num_threads);
  // One guard shared across every round, stratum and rule job: the first
  // trip anywhere cancels the whole fixpoint. The guard is installed both
  // as the thread-local (covering the sequential merge/union phases here)
  // and into eval_options (so each rule job's nested FoEvaluator adopts it
  // as the explicit guard instead of creating its own).
  ResolvedGuard guard(options_.eval_options.guard, options_.eval_options.limits,
                      options_.eval_options.fault_spec);
  QueryGuardScope guard_scope(guard.get());
  QueryGuard* caller_guard = options_.eval_options.guard;
  options_.eval_options.guard = guard.get();
  struct GuardOptionRestore {
    EvalOptions* options;
    QueryGuard* prev;
    ~GuardOptionRestore() { options->guard = prev; }
  } guard_restore{&options_.eval_options, caller_guard};
  DODB_RETURN_IF_ERROR(guard.status());
  // Rule jobs re-install their scopes from eval_options inside their own
  // FoEvaluator; these cover the sequential merge phases.
  IndexModeScope index_mode(options_.eval_options.use_index);
  ShardModeScope shard_mode(options_.eval_options.use_index &&
                            options_.eval_options.use_shards);
  ClosureFastPathScope closure_mode(options_.eval_options.use_closure_fastpath);
  MinimalCanonicalScope canonical_mode(
      options_.eval_options.use_minimal_canonical);
  // One closure memo spanning every round and stratum: semi-naive refirings
  // keep re-deriving the same candidate conjunctions, so later rounds serve
  // most canonicalizations from the memo. Installed into eval_options so
  // each rule job's FoEvaluator shares it (the memo is thread-safe);
  // restored on exit since the memo dies with this call.
  ClosureCache memo;
  ClosureCache* caller_memo = options_.eval_options.closure_cache;
  if (options_.eval_options.use_closure_memo && caller_memo == nullptr) {
    options_.eval_options.closure_cache = &memo;
  }
  struct MemoOptionRestore {
    EvalOptions* options;
    ClosureCache* prev;
    ~MemoOptionRestore() { options->closure_cache = prev; }
  } memo_restore{&options_.eval_options, caller_memo};
  ClosureCacheScope memo_scope(options_.eval_options.use_closure_memo
                                   ? options_.eval_options.closure_cache
                                   : nullptr);
  CounterDeltaScope counters(&counters_);
  DODB_RETURN_IF_ERROR(program_.Validate(*edb_));
  iterations_ = 0;

  Database idb;
  for (const auto& [name, arity] : program_.IdbArities()) {
    idb.SetRelation(name, GeneralizedRelation(arity));
  }

  if (options_.semantics == DatalogSemantics::kInflationary) {
    std::vector<const DatalogRule*> rules;
    rules.reserve(program_.rules.size());
    for (const DatalogRule& rule : program_.rules) rules.push_back(&rule);
    DODB_RETURN_IF_ERROR(RunToFixpoint(rules, &idb));
    return idb;
  }

  Result<std::vector<std::vector<std::string>>> strata = Stratify();
  if (!strata.ok()) return strata.status();
  for (const std::vector<std::string>& level : strata.value()) {
    std::set<std::string> preds(level.begin(), level.end());
    std::vector<const DatalogRule*> rules;
    for (const DatalogRule& rule : program_.rules) {
      if (preds.count(rule.head)) rules.push_back(&rule);
    }
    if (!rules.empty()) {
      DODB_RETURN_IF_ERROR(RunToFixpoint(rules, &idb));
    }
  }
  return idb;
}

}  // namespace dodb
