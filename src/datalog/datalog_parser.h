#ifndef DODB_DATALOG_DATALOG_PARSER_H_
#define DODB_DATALOG_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "core/status.h"
#include "datalog/datalog_ast.h"
#include "fo/token.h"

namespace dodb {

/// Parser for Datalog(not) programs:
///
///   program := rule*
///   rule    := atom (':-' body)? '.'
///   atom    := ident '(' termlist ')'
///   body    := literal (',' literal)*
///   literal := 'not' atom | atom | term relop term
///   term    := ident | number | '-' number
///
/// Comments start with '#'. Constraint literals use dense-order comparisons
/// only (no addition: the paper's Datalog(not) is over {=, <=}).
class DatalogParser {
 public:
  static Result<DatalogProgram> ParseProgram(std::string_view text);

 private:
  explicit DatalogParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* where);
  Status ErrorHere(const std::string& message) const;

  Result<DatalogRule> Rule();
  Result<DatalogLiteral> Literal();
  Status Atom(std::string* name, std::vector<FoExpr>* args);
  Result<FoExpr> Term_();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace dodb

#endif  // DODB_DATALOG_DATALOG_PARSER_H_
