#include "datalog/datalog_ast.h"

#include <algorithm>

#include "core/str_util.h"

namespace dodb {

std::string DatalogLiteral::ToString() const {
  if (kind == Kind::kCompare) {
    return StrCat(lhs.ToString(), " ", RelOpSymbol(op), " ", rhs.ToString());
  }
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const FoExpr& arg : args) parts.push_back(arg.ToString());
  std::string atom = StrCat(relation, "(", StrJoin(parts, ", "), ")");
  return negated ? StrCat("not ", atom) : atom;
}

std::string DatalogRule::ToString() const {
  std::vector<std::string> head_parts;
  head_parts.reserve(head_args.size());
  for (const FoExpr& arg : head_args) head_parts.push_back(arg.ToString());
  std::string out = StrCat(head, "(", StrJoin(head_parts, ", "), ")");
  if (body.empty()) return StrCat(out, ".");
  std::vector<std::string> body_parts;
  body_parts.reserve(body.size());
  for (const DatalogLiteral& literal : body) {
    body_parts.push_back(literal.ToString());
  }
  return StrCat(out, " :- ", StrJoin(body_parts, ", "), ".");
}

std::vector<std::string> DatalogQuery::HeadVars() const {
  std::vector<std::string> vars;
  auto add_expr = [&vars](const FoExpr& expr) {
    for (const auto& [name, coeff] : expr.coeffs) {
      if (std::find(vars.begin(), vars.end(), name) == vars.end()) {
        vars.push_back(name);
      }
    }
  };
  for (const DatalogLiteral& literal : body) {
    if (literal.kind == DatalogLiteral::Kind::kCompare) {
      add_expr(literal.lhs);
      add_expr(literal.rhs);
    } else {
      for (const FoExpr& arg : literal.args) add_expr(arg);
    }
  }
  return vars;
}

std::string DatalogQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const DatalogLiteral& literal : body) {
    parts.push_back(literal.ToString());
  }
  return StrCat("?- ", StrJoin(parts, ", "), ".");
}

std::map<std::string, int> DatalogProgram::IdbArities() const {
  std::map<std::string, int> arities;
  for (const DatalogRule& rule : rules) {
    arities.emplace(rule.head, static_cast<int>(rule.head_args.size()));
  }
  return arities;
}

namespace {
Status CheckSimpleTerm(const FoExpr& expr, const std::string& context) {
  if (!expr.IsSimpleVar() && !expr.IsConstant()) {
    return Status::Unsupported(
        StrCat("non-simple term '", expr.ToString(), "' in ", context,
               " (Datalog over dense-order constraints has no addition)"));
  }
  return Status::Ok();
}
}  // namespace

Status DatalogProgram::Validate(const Database& edb) const {
  std::map<std::string, int> arities = IdbArities();
  for (const auto& [name, arity] : arities) {
    if (edb.HasRelation(name)) {
      return Status::InvalidArgument(
          StrCat("IDB predicate '", name, "' collides with an EDB relation"));
    }
    (void)arity;
  }
  for (const DatalogRule& rule : rules) {
    auto it = arities.find(rule.head);
    if (it->second != static_cast<int>(rule.head_args.size())) {
      return Status::InvalidArgument(
          StrCat("predicate '", rule.head, "' has rules with arity ",
                 it->second, " and ", rule.head_args.size()));
    }
    for (const FoExpr& arg : rule.head_args) {
      DODB_RETURN_IF_ERROR(
          CheckSimpleTerm(arg, StrCat("head of rule for '", rule.head, "'")));
    }
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.kind == DatalogLiteral::Kind::kCompare) {
        DODB_RETURN_IF_ERROR(CheckSimpleTerm(literal.lhs, "constraint atom"));
        DODB_RETURN_IF_ERROR(CheckSimpleTerm(literal.rhs, "constraint atom"));
        continue;
      }
      for (const FoExpr& arg : literal.args) {
        DODB_RETURN_IF_ERROR(
            CheckSimpleTerm(arg, StrCat("atom '", literal.relation, "'")));
      }
      int used_arity = static_cast<int>(literal.args.size());
      auto idb = arities.find(literal.relation);
      if (idb != arities.end()) {
        if (idb->second != used_arity) {
          return Status::InvalidArgument(
              StrCat("predicate '", literal.relation, "' has arity ",
                     idb->second, " but is used with arity ", used_arity));
        }
        continue;
      }
      const GeneralizedRelation* rel = edb.FindRelation(literal.relation);
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", literal.relation,
                   "' is neither IDB nor in the extensional database"));
      }
      if (rel->arity() != used_arity) {
        return Status::InvalidArgument(
            StrCat("EDB relation '", literal.relation, "' has arity ",
                   rel->arity(), " but is used with arity ", used_arity));
      }
    }
  }
  return Status::Ok();
}

std::string DatalogProgram::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(rules.size() + queries.size());
  for (const DatalogRule& rule : rules) parts.push_back(rule.ToString());
  for (const DatalogQuery& query : queries) parts.push_back(query.ToString());
  return StrJoin(parts, "\n");
}

}  // namespace dodb
