#ifndef DODB_DATALOG_DATALOG_EVALUATOR_H_
#define DODB_DATALOG_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"
#include "datalog/datalog_ast.h"
#include "fo/evaluator.h"
#include "io/database.h"

namespace dodb {

/// Which negation semantics to apply.
enum class DatalogSemantics {
  /// The paper's semantics (§4, Theorem 4.4): all rules fire against the
  /// current snapshot each round; derived facts are added and never
  /// retracted. Negation may be used freely (even recursively).
  kInflationary,
  /// Classical stratified semantics: negation only through strata; each
  /// stratum is evaluated to its least fixpoint.
  kStratified,
};

struct DatalogOptions {
  DatalogSemantics semantics = DatalogSemantics::kInflationary;
  /// Abort with ResourceExhausted beyond this many rounds (0 = unlimited;
  /// termination is guaranteed anyway — see EvaluateInflationary).
  uint64_t max_iterations = 100000;
  /// A second, user-facing round cap mirroring CCalcOptions'
  /// max_fix_iterations: 0 = unlimited, otherwise the fixpoint aborts with
  /// ResourceExhausted after this many rounds. When both caps are nonzero
  /// the stricter one applies. Unlike max_iterations (a deep safety
  /// backstop) this is meant to be set per query, e.g. from \limit.
  uint64_t max_fix_rounds = 0;
  /// Semi-naive evaluation: after the first round, a rule whose IDB
  /// references are all positive is re-evaluated once per positive IDB
  /// occurrence with that occurrence restricted to the previous round's
  /// delta. Sound (positive bodies are monotone in the IDB); rules with
  /// negated IDB atoms always run naively against the full snapshot, so
  /// the inflationary semantics is unchanged. Off = pure naive iteration
  /// (the ablation baseline measured in bench_thm44).
  bool semi_naive = true;
  EvalOptions eval_options;
};

/// Fixpoint evaluator for Datalog(not) over dense-order constraint
/// databases. Rule bodies are lowered to first-order formulas and evaluated
/// in closed form by FoEvaluator, so IDB relations are themselves finitely
/// representable at every stage [KKR90].
///
/// Termination: quantifier elimination and complement only ever reuse
/// constants already present, so all derivable canonical tuples come from a
/// finite universe and the inflationary sequence stabilizes.
class DatalogEvaluator {
 public:
  DatalogEvaluator(DatalogProgram program, const Database* edb,
                   DatalogOptions options = {});

  /// Runs to fixpoint; returns the IDB database.
  Result<Database> Evaluate();

  /// Answers a "?- body." query against a fixpoint previously computed by
  /// Evaluate() (pass its result as `idb`). Answer columns are
  /// query.HeadVars() in first-occurrence order.
  Result<GeneralizedRelation> Answer(const DatalogQuery& query,
                                     const Database& idb);

  /// Fires rule `rule_index` of the program once against `snapshot` (which
  /// must already hold every relation the body references — EDB, IDB, and
  /// any installed delta relations). When `redirect_occurrence` is set, that
  /// body literal's relation is rewritten to `redirect_relation` before
  /// lowering: the semi-naive delta firing RunToFixpoint plans internally,
  /// exposed so the view-maintenance subsystem can compile per-view delta
  /// rules from the same primitive. Unlike Evaluate(), this installs no
  /// guard/memo/mode scopes — the caller owns that setup.
  Result<GeneralizedRelation> FireRule(
      size_t rule_index, const Database& snapshot,
      std::optional<size_t> redirect_occurrence = std::nullopt,
      std::string_view redirect_relation = {});

  /// FireRule with any number of body-literal redirects: each (occurrence,
  /// relation) pair rewrites that literal to read the named snapshot
  /// relation. View maintenance uses this to aim one occurrence at a delta
  /// relation and the remaining occurrences at semi-join-restricted subsets
  /// of their relations in the same firing.
  Result<GeneralizedRelation> FireRule(
      size_t rule_index, const Database& snapshot,
      const std::vector<std::pair<size_t, std::string>>& redirects);

  /// Positions of positive IDB atoms in a rule's body; nullopt when the rule
  /// has a *negated* IDB atom (then semi-naive delta firing is unsound and
  /// the rule must run naively every round).
  static std::optional<std::vector<size_t>> PositiveIdbOccurrences(
      const DatalogRule& rule, const std::map<std::string, int>& idb_arities);

  const DatalogProgram& program() const { return program_; }
  const DatalogOptions& options() const { return options_; }

  /// Rounds executed by the last Evaluate() call.
  uint64_t iterations() const { return iterations_; }

  /// Engine-counter delta (pairs pruned, subsumption checks, index time...)
  /// attributed to the last Evaluate() call.
  const EvalCounterSnapshot& counters() const { return counters_; }

 private:
  Result<GeneralizedRelation> EvalRule(const DatalogRule& rule,
                                       const Database& snapshot);
  Status RunToFixpoint(const std::vector<const DatalogRule*>& rules,
                       Database* idb);
  Result<std::vector<std::vector<std::string>>> Stratify() const;

  DatalogProgram program_;
  const Database* edb_;
  DatalogOptions options_;
  uint64_t iterations_ = 0;
  EvalCounterSnapshot counters_;
};

/// Syntactic set difference of canonical relations: tuples of `next` not
/// present (Compare == 0) in `prev`; both must be stored-sorted, as AddTuple
/// keeps them. This is the fixpoint's change check, exported because the
/// DML layer uses the same structural diff to capture base-relation deltas
/// for view maintenance.
GeneralizedRelation StructuralTupleDifference(const GeneralizedRelation& next,
                                              const GeneralizedRelation& prev);

/// Populates and closes the lazily cached constraint network, signature,
/// index and shard partition of every relation in `db`, making the whole
/// snapshot read-only-sharable across pool workers (see RunToFixpoint's
/// warm-before-parallel discipline). Exported for the view-maintenance
/// rounds, which fan out rule jobs the same way.
void WarmDatabaseCaches(const Database& db);

}  // namespace dodb

#endif  // DODB_DATALOG_DATALOG_EVALUATOR_H_
