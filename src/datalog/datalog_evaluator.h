#ifndef DODB_DATALOG_DATALOG_EVALUATOR_H_
#define DODB_DATALOG_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "datalog/datalog_ast.h"
#include "fo/evaluator.h"
#include "io/database.h"

namespace dodb {

/// Which negation semantics to apply.
enum class DatalogSemantics {
  /// The paper's semantics (§4, Theorem 4.4): all rules fire against the
  /// current snapshot each round; derived facts are added and never
  /// retracted. Negation may be used freely (even recursively).
  kInflationary,
  /// Classical stratified semantics: negation only through strata; each
  /// stratum is evaluated to its least fixpoint.
  kStratified,
};

struct DatalogOptions {
  DatalogSemantics semantics = DatalogSemantics::kInflationary;
  /// Abort with ResourceExhausted beyond this many rounds (0 = unlimited;
  /// termination is guaranteed anyway — see EvaluateInflationary).
  uint64_t max_iterations = 100000;
  /// A second, user-facing round cap mirroring CCalcOptions'
  /// max_fix_iterations: 0 = unlimited, otherwise the fixpoint aborts with
  /// ResourceExhausted after this many rounds. When both caps are nonzero
  /// the stricter one applies. Unlike max_iterations (a deep safety
  /// backstop) this is meant to be set per query, e.g. from \limit.
  uint64_t max_fix_rounds = 0;
  /// Semi-naive evaluation: after the first round, a rule whose IDB
  /// references are all positive is re-evaluated once per positive IDB
  /// occurrence with that occurrence restricted to the previous round's
  /// delta. Sound (positive bodies are monotone in the IDB); rules with
  /// negated IDB atoms always run naively against the full snapshot, so
  /// the inflationary semantics is unchanged. Off = pure naive iteration
  /// (the ablation baseline measured in bench_thm44).
  bool semi_naive = true;
  EvalOptions eval_options;
};

/// Fixpoint evaluator for Datalog(not) over dense-order constraint
/// databases. Rule bodies are lowered to first-order formulas and evaluated
/// in closed form by FoEvaluator, so IDB relations are themselves finitely
/// representable at every stage [KKR90].
///
/// Termination: quantifier elimination and complement only ever reuse
/// constants already present, so all derivable canonical tuples come from a
/// finite universe and the inflationary sequence stabilizes.
class DatalogEvaluator {
 public:
  DatalogEvaluator(DatalogProgram program, const Database* edb,
                   DatalogOptions options = {});

  /// Runs to fixpoint; returns the IDB database.
  Result<Database> Evaluate();

  /// Answers a "?- body." query against a fixpoint previously computed by
  /// Evaluate() (pass its result as `idb`). Answer columns are
  /// query.HeadVars() in first-occurrence order.
  Result<GeneralizedRelation> Answer(const DatalogQuery& query,
                                     const Database& idb);

  /// Rounds executed by the last Evaluate() call.
  uint64_t iterations() const { return iterations_; }

  /// Engine-counter delta (pairs pruned, subsumption checks, index time...)
  /// attributed to the last Evaluate() call.
  const EvalCounterSnapshot& counters() const { return counters_; }

 private:
  Result<GeneralizedRelation> EvalRule(const DatalogRule& rule,
                                       const Database& snapshot);
  Status RunToFixpoint(const std::vector<const DatalogRule*>& rules,
                       Database* idb);
  Result<std::vector<std::vector<std::string>>> Stratify() const;

  DatalogProgram program_;
  const Database* edb_;
  DatalogOptions options_;
  uint64_t iterations_ = 0;
  EvalCounterSnapshot counters_;
};

}  // namespace dodb

#endif  // DODB_DATALOG_DATALOG_EVALUATOR_H_
