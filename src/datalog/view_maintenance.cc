#include "datalog/view_maintenance.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>
#include <utility>

#include "constraints/eval_counters.h"
#include "constraints/relation_index.h"
#include "constraints/tuple_signature.h"
#include "core/check.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "core/thread_pool.h"
#include "datalog/datalog_parser.h"

namespace dodb {

namespace {

// Per-predicate delta relations installed into the shared snapshot, same
// convention as RunToFixpoint's semi-naive deltas. A distinct prefix keeps
// the DRed re-derive targets from colliding with insert deltas when a head
// carries both in one pass.
constexpr char kDeltaRelationName[] = "__dodb_delta";
constexpr char kRederiveRelationName[] = "__dodb_rederive";
constexpr char kSemiJoinRelationName[] = "__dodb_sj";

// Body relations below this size skip semi-join restriction: probing the
// index and materializing the subset costs more than the firing saves.
constexpr size_t kMinRestrictTuples = 16;

// Support masks are one bit per rule; larger programs recompute instead.
constexpr size_t kMaxIncrementalRules = 64;

uint64_t RuleBit(size_t rule_index) { return uint64_t{1} << rule_index; }

bool IsViewName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

// Installs the evaluation scopes one maintenance pass needs, mirroring
// DatalogEvaluator::Evaluate(): the thread-count override, a resolved guard
// (shared by the sequential merge phases via the thread-local scope and by
// every rule job via eval_options), the index/shard/closure mode scopes for
// the merge phases, and the view's persistent closure memo. Also owns the
// pass's wall-clock attribution: the elapsed time lands in the
// view_maintenance_ns counter at destruction.
class MaintenancePass {
 public:
  MaintenancePass(ClosureCache* memo, const ViewMaintenanceOptions& options)
      : options_(options.datalog),
        threads_(options_.eval_options.num_threads),
        guard_(options_.eval_options.guard, options_.eval_options.limits,
               options_.eval_options.fault_spec),
        guard_scope_(guard_.get()),
        index_mode_(options_.eval_options.use_index),
        shard_mode_(options_.eval_options.use_index &&
                    options_.eval_options.use_shards),
        closure_mode_(options_.eval_options.use_closure_fastpath),
        canonical_mode_(options_.eval_options.use_minimal_canonical),
        memo_scope_(options_.eval_options.use_closure_memo ? memo : nullptr),
        start_(std::chrono::steady_clock::now()) {
    options_.eval_options.guard = guard_.get();
    if (options_.eval_options.use_closure_memo &&
        options_.eval_options.closure_cache == nullptr) {
      options_.eval_options.closure_cache = memo;
    }
  }
  ~MaintenancePass() {
    EvalCounters::AddViewMaintenanceNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  MaintenancePass(const MaintenancePass&) = delete;
  MaintenancePass& operator=(const MaintenancePass&) = delete;

  /// DatalogOptions with the resolved guard and the view memo installed —
  /// what the pass's DatalogEvaluator (and hence every FireRule job's
  /// nested FoEvaluator) runs under.
  const DatalogOptions& options() const { return options_; }
  QueryGuard* guard() const { return guard_.get(); }
  Status status() const { return guard_.status(); }

 private:
  DatalogOptions options_;
  EvalThreadsScope threads_;
  ResolvedGuard guard_;
  QueryGuardScope guard_scope_;
  IndexModeScope index_mode_;
  ShardModeScope shard_mode_;
  ClosureFastPathScope closure_mode_;
  MinimalCanonicalScope canonical_mode_;
  ClosureCacheScope memo_scope_;
  std::chrono::steady_clock::time_point start_;
};

// One delta-restricted firing: rule `rule` with body occurrence
// `occurrence` redirected to `pred`'s installed delta relation.
struct DeltaJob {
  size_t rule = 0;
  size_t occurrence = 0;
  std::string pred;
};

// Plans the round's delta jobs: one per positive relation occurrence of a
// predicate that currently has a nonempty delta. (Incremental views are
// positive programs, so every relation literal qualifies.)
std::vector<DeltaJob> PlanDeltaJobs(
    const DatalogProgram& program,
    const std::map<std::string, GeneralizedRelation>& deltas) {
  std::vector<DeltaJob> jobs;
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const DatalogRule& rule = program.rules[i];
    for (size_t o = 0; o < rule.body.size(); ++o) {
      const DatalogLiteral& literal = rule.body[o];
      if (literal.kind != DatalogLiteral::Kind::kRelation || literal.negated) {
        continue;
      }
      auto it = deltas.find(literal.relation);
      if (it == deltas.end() || it->second.IsEmpty()) continue;
      jobs.push_back(DeltaJob{i, o, literal.relation});
    }
  }
  return jobs;
}

// Evaluates `eval_job` for each job index — on the pool when worthwhile,
// with the snapshot's caches warmed first so workers share them read-only
// (same discipline as RunToFixpoint).
std::vector<Result<GeneralizedRelation>> RunJobs(
    size_t n, const Database& snapshot,
    const std::function<Result<GeneralizedRelation>(size_t)>& eval_job) {
  if (!ShouldParallelize(n)) {
    std::vector<Result<GeneralizedRelation>> out;
    out.reserve(n);
    for (size_t j = 0; j < n; ++j) out.push_back(eval_job(j));
    return out;
  }
  WarmDatabaseCaches(snapshot);
  return ParallelMap<Result<GeneralizedRelation>>(n, eval_job);
}

GeneralizedRelation RelationFromTuples(
    int arity, const std::vector<GeneralizedTuple>& tuples) {
  GeneralizedRelation rel(arity);
  for (const GeneralizedTuple& tuple : tuples) rel.AddCanonicalTuple(tuple);
  return rel;
}

// A delta-directed firing plan: literal redirects into restricted subsets,
// plus the static verdict that the firing cannot emit anything because some
// restricted body literal has no candidate tuples at all (then the caller
// skips the firing outright instead of evaluating a join with an empty
// input).
struct FirePlan {
  std::vector<std::pair<size_t, std::string>> redirects;
  bool provably_empty = false;
};

// Semi-join restriction for one delta-directed firing — what makes a firing
// O(delta) instead of O(n). The delta literal binds each shared join
// variable to the delta relation's per-column cover box; every other
// positive body literal is then restricted, via the relation index, to the
// stored tuples whose bound box overlaps that cover on the shared columns.
// A shared simple variable lowers to a dense-order equality between the two
// columns, and disjoint column boxes make that equality unsatisfiable
// (exactly the engine's pair-pruning criterion, BoundsMayOverlap), so the
// dropped tuples could not have contributed to the join: the restricted
// firing emits precisely what the unrestricted one would, without
// materializing the non-joinable bulk of each body relation per firing.
// Restricted subsets are installed into `*snapshot` under firing-unique
// names; the returned redirects aim the rule's literals at them.
FirePlan PlanSemiJoinRestrictions(const DatalogRule& rule,
                                  size_t delta_occurrence,
                                  const GeneralizedRelation& delta_rel,
                                  size_t job_index, Database* snapshot) {
  FirePlan plan;
  std::vector<std::pair<size_t, std::string>>& redirects = plan.redirects;
  if (delta_rel.IsEmpty()) {
    plan.provably_empty = true;
    return plan;
  }
  // Join variables the delta literal binds → the delta column binding them.
  const std::vector<FoExpr>& delta_args = rule.body[delta_occurrence].args;
  std::map<std::string, int> delta_columns;
  for (size_t c = 0; c < delta_args.size(); ++c) {
    if (delta_args[c].IsSimpleVar()) {
      delta_columns.emplace(delta_args[c].VarName(), static_cast<int>(c));
    }
  }
  if (delta_columns.empty()) return plan;
  // Cover boxes (interval hulls) over the delta's tuples, one per referenced
  // delta column, computed lazily — the delta has O(delta) tuples.
  std::vector<char> have_cover(delta_args.size(), 0);
  std::vector<ColumnBound> covers(delta_args.size());
  auto cover_of = [&](int column) -> const ColumnBound& {
    if (!have_cover[column]) {
      bool first = true;
      for (const GeneralizedTuple& tuple : delta_rel.tuples()) {
        const TupleSignature& sig = tuple.CachedSignature();
        DODB_CHECK(static_cast<size_t>(column) < sig.columns.size());
        if (first) {
          covers[column] = sig.columns[column];
          first = false;
        } else {
          WidenToCover(covers[column], sig.columns[column]);
        }
      }
      have_cover[column] = 1;
    }
    return covers[column];
  };

  for (size_t o = 0; o < rule.body.size(); ++o) {
    if (o == delta_occurrence) continue;
    const DatalogLiteral& literal = rule.body[o];
    if (literal.kind != DatalogLiteral::Kind::kRelation || literal.negated) {
      continue;
    }
    const GeneralizedRelation* rel = snapshot->FindRelation(literal.relation);
    if (rel == nullptr || rel->tuple_count() < kMinRestrictTuples) continue;
    TupleSignature probe;
    probe.hash = 0;
    probe.columns.resize(literal.args.size());  // default = unbounded
    bool constrained = false;
    for (size_t c = 0; c < literal.args.size(); ++c) {
      if (!literal.args[c].IsSimpleVar()) continue;
      auto it = delta_columns.find(literal.args[c].VarName());
      if (it == delta_columns.end()) continue;
      probe.columns[c] = cover_of(it->second);
      constrained = true;
    }
    if (!constrained) continue;
    std::vector<size_t> positions;
    rel->Index().AppendOverlapCandidates(probe, &positions);
    if (positions.empty()) {
      // No stored tuple can join the delta through this literal, so the
      // whole conjunction is empty — the caller skips the firing.
      plan.provably_empty = true;
      return plan;
    }
    if (positions.size() >= rel->tuple_count()) continue;  // nothing pruned
    GeneralizedRelation restricted(rel->arity());
    const std::vector<GeneralizedTuple>& tuples = rel->tuples();
    // Stored canonical tuples are mutually non-subsuming, so the subset
    // inserts without displacement.
    for (size_t pos : positions) restricted.AddCanonicalTuple(tuples[pos]);
    std::string name = StrCat(kSemiJoinRelationName, ":", job_index, ":", o);
    snapshot->SetRelation(name, std::move(restricted));
    redirects.emplace_back(o, std::move(name));
  }
  return plan;
}

}  // namespace

size_t MaterializedView::tuple_count() const {
  const GeneralizedRelation* rel = idb_.FindRelation(name_);
  return rel == nullptr ? 0 : rel->tuple_count();
}

ViewRegistry::ViewRegistry(ViewMaintenanceOptions options)
    : options_(std::move(options)) {}

ViewRegistry::~ViewRegistry() = default;

Result<const MaterializedView*> ViewRegistry::Create(const std::string& name,
                                                     const std::string& text,
                                                     Database* db) {
  DODB_CHECK(db != nullptr);
  if (!IsViewName(name)) {
    return Status::InvalidArgument(
        StrCat("'", name, "' is not a valid view name"));
  }
  if (views_.count(name) != 0) {
    return Status::InvalidArgument(StrCat("view '", name, "' already exists"));
  }
  if (db->HasRelation(name)) {
    return Status::InvalidArgument(
        StrCat("a relation named '", name, "' already exists"));
  }
  Result<DatalogProgram> parsed = DatalogParser::ParseProgram(text);
  if (!parsed.ok()) return parsed.status();

  auto view = std::make_unique<MaterializedView>();
  view->name_ = name;
  view->text_ = text;
  view->program_ = std::move(parsed).value();
  DODB_RETURN_IF_ERROR(Prepare(view.get()));
  for (const std::string& base : view->bases_) {
    if (views_.count(base) != 0) {
      return Status::Unsupported(
          StrCat("view '", name, "' reads view '", base,
                 "': views over views are not supported"));
    }
    if (!db->HasRelation(base)) {
      return Status::NotFound(
          StrCat("view '", name, "' reads unknown relation '", base, "'"));
    }
  }

  MaterializedView* raw = view.get();
  Status status = Recompute(raw, db);
  if (!status.ok()) return status;  // nothing registered, catalog untouched
  views_.emplace(name, std::move(view));
  return raw;
}

Status ViewRegistry::Prepare(MaterializedView* view) {
  if (!view->program_.queries.empty()) {
    return Status::InvalidArgument(
        "view definitions must not contain '?-' queries");
  }
  view->idb_arities_ = view->program_.IdbArities();
  if (view->idb_arities_.count(view->name_) == 0) {
    return Status::InvalidArgument(
        StrCat("view program must define a predicate named '", view->name_,
               "'"));
  }
  view->bases_.clear();
  view->base_only_rules_ = 0;
  bool positive = true;
  for (size_t i = 0; i < view->program_.rules.size(); ++i) {
    bool base_only = true;
    for (const DatalogLiteral& literal : view->program_.rules[i].body) {
      if (literal.kind != DatalogLiteral::Kind::kRelation) continue;
      if (literal.negated) positive = false;
      if (view->idb_arities_.count(literal.relation) == 0) {
        view->bases_.insert(literal.relation);
      } else {
        base_only = false;
      }
    }
    if (base_only && i < kMaxIncrementalRules) {
      view->base_only_rules_ |= RuleBit(i);
    }
  }
  view->incremental_ =
      positive && view->program_.rules.size() <= kMaxIncrementalRules;
  // Empty relation shells so tuple_count()/Export are well-defined even
  // while stale; Recompute replaces them wholesale.
  Database shells;
  for (const auto& [pred, arity] : view->idb_arities_) {
    shells.SetRelation(pred, GeneralizedRelation(arity));
  }
  view->idb_ = std::move(shells);
  view->meta_.clear();
  view->max_depth_ = 0;
  view->exact_support_ = true;
  return Status::Ok();
}

Status ViewRegistry::Drop(const std::string& name, Database* db) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("no view named '", name, "'"));
  }
  views_.erase(it);
  db->RemoveRelation(name);
  return Status::Ok();
}

Status ViewRegistry::Restore(const std::string& name,
                             const std::string& text) {
  if (views_.count(name) != 0) {
    return Status::InvalidArgument(
        StrCat("view '", name, "' already registered"));
  }
  Result<DatalogProgram> parsed = DatalogParser::ParseProgram(text);
  if (!parsed.ok()) return parsed.status();
  auto view = std::make_unique<MaterializedView>();
  view->name_ = name;
  view->text_ = text;
  view->program_ = std::move(parsed).value();
  DODB_RETURN_IF_ERROR(Prepare(view.get()));
  view->stale_ = true;
  views_.emplace(name, std::move(view));
  return Status::Ok();
}

bool ViewRegistry::RestoreDrop(const std::string& name) {
  return views_.erase(name) != 0;
}

Status ViewRegistry::RefreshStale(Database* db) {
  Status first = Status::Ok();
  for (auto& [name, view] : views_) {
    if (!view->stale_) continue;
    Status status = Recompute(view.get(), db);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

Status ViewRegistry::ApplyDelta(const BaseDelta& delta, Database* db) {
  DODB_CHECK(db != nullptr);
  if (delta.inserted.empty() && delta.deleted.empty()) return Status::Ok();
  Status first = Status::Ok();
  for (auto& [name, view] : views_) {
    if (view->bases_.count(delta.relation) == 0) continue;
    Status status = Maintain(view.get(), delta, db);
    // A failed view is stale (Maintain marked it) but the others still get
    // their maintenance; the first error surfaces to the DML caller.
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

bool ViewRegistry::IsView(const std::string& name) const {
  return views_.count(name) != 0;
}

bool ViewRegistry::DependsOn(const std::string& relation) const {
  for (const auto& [name, view] : views_) {
    if (view->bases_.count(relation) != 0) return true;
  }
  return false;
}

const MaterializedView* ViewRegistry::Find(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<const MaterializedView*> ViewRegistry::Views() const {
  std::vector<const MaterializedView*> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

Database ViewRegistry::BaseSnapshot(const Database& db) const {
  Database base = db;
  for (const auto& [name, view] : views_) base.RemoveRelation(name);
  return base;
}

void ViewRegistry::Export(const MaterializedView& view, Database* db) const {
  const GeneralizedRelation* rel = view.idb_.FindRelation(view.name());
  DODB_CHECK(rel != nullptr);
  db->SetRelation(view.name(), *rel);
}

Status ViewRegistry::Recompute(MaterializedView* view, Database* db) {
  EvalCounters::AddViewFullRecomputes(1);
  MaintenancePass pass(view->memo_.get(), options_);
  DODB_RETURN_IF_ERROR(pass.status());
  Database base = BaseSnapshot(*db);
  DatalogEvaluator eval(view->program_, &base, pass.options());
  Result<Database> idb = eval.Evaluate();
  if (!idb.ok()) {
    view->stale_ = true;
    return idb.status();
  }
  view->idb_ = std::move(idb).value();
  view->max_depth_ = static_cast<uint32_t>(eval.iterations());
  view->meta_.clear();
  view->exact_support_ = true;
  view->stale_ = false;
  if (view->incremental_) {
    Status status = RebuildSupport(view, &eval, base);
    if (!status.ok()) {
      view->stale_ = true;
      return status;
    }
  }
  Export(*view, db);
  return Status::Ok();
}

Status ViewRegistry::RebuildSupport(MaterializedView* view,
                                    DatalogEvaluator* eval,
                                    const Database& base) {
  // Seed every stored tuple with an empty mask, then OR in a rule's bit
  // whenever its naive firing over the final fixpoint re-emits the tuple
  // verbatim.
  for (const auto& [pred, arity] : view->idb_arities_) {
    MaterializedView::MetaMap& meta = view->meta_[pred];
    meta.clear();
    const GeneralizedRelation* rel = view->idb_.FindRelation(pred);
    DODB_CHECK(rel != nullptr);
    meta.reserve(rel->tuple_count());
    for (const GeneralizedTuple& tuple : rel->tuples()) {
      meta.emplace(tuple, MaterializedView::TupleMeta{});
    }
  }

  Database snapshot = base;
  for (const std::string& pred : view->idb_.RelationNames()) {
    snapshot.SetRelation(pred, *view->idb_.FindRelation(pred));
  }
  QueryGuard* guard = CurrentQueryGuard();
  const size_t num_rules = view->program_.rules.size();
  auto eval_job = [&](size_t j) -> Result<GeneralizedRelation> {
    if (guard != nullptr && !guard->Checkpoint(GuardSite::kDatalogRule)) {
      return guard->status();
    }
    return eval->FireRule(j, snapshot);
  };
  std::vector<Result<GeneralizedRelation>> fired =
      RunJobs(num_rules, snapshot, eval_job);

  GuardTicker ticker(guard, GuardSite::kViewDeltaApply, 64);
  for (size_t j = 0; j < num_rules; ++j) {
    if (!fired[j].ok()) return fired[j].status();
    MaterializedView::MetaMap& meta =
        view->meta_[view->program_.rules[j].head];
    const uint64_t bit = RuleBit(j);
    for (const GeneralizedTuple& tuple : fired[j].value().tuples()) {
      if (!ticker.Tick()) return guard->status();
      auto it = meta.find(tuple);
      if (it != meta.end()) it->second.support |= bit;
    }
  }
  for (const auto& [pred, meta] : view->meta_) {
    for (const auto& [tuple, tuple_meta] : meta) {
      if (tuple_meta.support == 0) {
        // A stored tuple no final-state firing re-emits verbatim (its
        // producing inputs were subsume-erased after it was derived).
        // Support-driven deletion can't see its death, so deletes on this
        // view fall back to recompute until the next exact rebuild.
        view->exact_support_ = false;
        return Status::Ok();
      }
    }
  }
  return Status::Ok();
}

Status ViewRegistry::Maintain(MaterializedView* view, const BaseDelta& delta,
                              Database* db) {
  if (view->stale_ || !view->incremental_ ||
      (!delta.deleted.empty() && !view->exact_support_)) {
    return Recompute(view, db);
  }
  size_t base_total = 0;
  for (const std::string& base : view->bases_) {
    const GeneralizedRelation* rel = db->FindRelation(base);
    if (rel != nullptr) base_total += rel->tuple_count();
  }
  const size_t delta_size = delta.inserted.size() + delta.deleted.size();
  if (base_total == 0 ||
      static_cast<double>(delta_size) >
          options_.max_delta_fraction * static_cast<double>(base_total)) {
    return Recompute(view, db);
  }

  MaintenancePass pass(view->memo_.get(), options_);
  DODB_RETURN_IF_ERROR(pass.status());
  Database new_base = BaseSnapshot(*db);
  DatalogEvaluator eval(view->program_, &new_base, pass.options());

  Status status = Status::Ok();
  std::map<std::string, GeneralizedRelation> delta_in;
  if (!delta.deleted.empty()) {
    // Reconstruct the pre-statement base state the over-delete waves fire
    // against: either the caller's COW snapshot, or current ∖ inserted ∪
    // deleted (the structural inverse of the statement).
    Database old_base = new_base;
    if (delta.old_relation != nullptr) {
      old_base.SetRelation(delta.relation, *delta.old_relation);
    } else {
      const GeneralizedRelation* current = new_base.FindRelation(delta.relation);
      DODB_CHECK(current != nullptr);
      GeneralizedRelation old_rel = *current;
      for (const GeneralizedTuple& tuple : delta.inserted) {
        old_rel.EraseCanonicalTuple(tuple);
      }
      for (const GeneralizedTuple& tuple : delta.deleted) {
        old_rel.AddCanonicalTuple(tuple);
      }
      old_base.SetRelation(delta.relation, std::move(old_rel));
    }
    status = MaintainDelete(view, &eval, delta, old_base, new_base, &delta_in);
  }
  if (status.ok() && !delta.inserted.empty()) {
    const GeneralizedRelation* rel = new_base.FindRelation(delta.relation);
    DODB_CHECK(rel != nullptr);
    delta_in.emplace(delta.relation,
                     RelationFromTuples(rel->arity(), delta.inserted));
  }
  if (status.ok() && !delta_in.empty()) {
    status = PropagateInserts(view, &eval, std::move(delta_in), new_base);
  }
  if (!status.ok()) {
    view->stale_ = true;
    return status;
  }
  if (delta.base_displaced) view->exact_support_ = false;
  Export(*view, db);
  return Status::Ok();
}

Status ViewRegistry::PropagateInserts(
    MaterializedView* view, DatalogEvaluator* eval,
    std::map<std::string, GeneralizedRelation> delta_in, const Database& base) {
  QueryGuard* guard = CurrentQueryGuard();
  const std::vector<DatalogRule>& rules = view->program_.rules;
  uint64_t rounds = 0;
  const uint64_t max_rounds = options_.datalog.max_iterations;

  while (!delta_in.empty()) {
    if (max_rounds != 0 && ++rounds > max_rounds) {
      return Status::ResourceExhausted(
          StrCat("view '", view->name_,
                 "' maintenance did not stabilize within ", max_rounds,
                 " rounds"));
    }
    if (guard != nullptr &&
        !guard->Checkpoint(GuardSite::kViewDeltaApply)) {
      return guard->status();
    }

    Database snapshot = base;
    for (const std::string& pred : view->idb_.RelationNames()) {
      snapshot.SetRelation(pred, *view->idb_.FindRelation(pred));
    }
    for (const auto& [pred, rel] : delta_in) {
      snapshot.SetRelation(StrCat(kDeltaRelationName, ":", pred), rel);
    }
    std::vector<DeltaJob> jobs = PlanDeltaJobs(view->program_, delta_in);
    if (jobs.empty()) break;  // deltas no rule body reads

    std::vector<FirePlan> plans(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      plans[j] = PlanSemiJoinRestrictions(
          rules[jobs[j].rule], jobs[j].occurrence, delta_in.at(jobs[j].pred),
          j, &snapshot);
      plans[j].redirects.emplace_back(
          jobs[j].occurrence, StrCat(kDeltaRelationName, ":", jobs[j].pred));
    }
    auto eval_job = [&](size_t j) -> Result<GeneralizedRelation> {
      if (plans[j].provably_empty) {
        return GeneralizedRelation(
            static_cast<int>(rules[jobs[j].rule].head_args.size()));
      }
      if (guard != nullptr && !guard->Checkpoint(GuardSite::kDatalogRule)) {
        return guard->status();
      }
      return eval->FireRule(jobs[j].rule, snapshot, plans[j].redirects);
    };
    std::vector<Result<GeneralizedRelation>> fired =
        RunJobs(jobs.size(), snapshot, eval_job);

    // Sequential merge in plan order, mirroring RunToFixpoint. The round's
    // delta is collected *during* the merge — every fresh insert is a delta
    // tuple unless a later insert in the same round subsume-erases it — so
    // producing the delta costs O(delta) probes instead of a structural
    // diff's full-relation scan (which would make every round O(n)).
    std::map<std::string, GeneralizedRelation> work;
    std::map<std::string, std::vector<GeneralizedTuple>> fresh;
    GuardTicker ticker(guard, GuardSite::kViewDeltaApply, 64);
    std::vector<GeneralizedTuple> erased;
    for (size_t j = 0; j < jobs.size(); ++j) {
      if (!fired[j].ok()) return fired[j].status();
      const std::string& head = rules[jobs[j].rule].head;
      auto wit = work.find(head);
      if (wit == work.end()) {
        wit = work.emplace(head, *view->idb_.FindRelation(head)).first;
      }
      MaterializedView::MetaMap& meta = view->meta_[head];
      std::vector<GeneralizedTuple>& fresh_head = fresh[head];
      const uint64_t bit = RuleBit(jobs[j].rule);
      for (const GeneralizedTuple& tuple : fired[j].value().tuples()) {
        if (!ticker.Tick()) return guard->status();
        erased.clear();
        if (wit->second.AddCanonicalTupleCaptured(tuple, &erased)) {
          meta[tuple] = MaterializedView::TupleMeta{
              bit, static_cast<uint32_t>(rounds)};
          fresh_head.push_back(tuple);
          // Displaced tuples may have fed downstream derivations whose
          // support bits now reference unrunnable combinations; deletes on
          // this view recompute until the next exact rebuild.
          if (!erased.empty()) view->exact_support_ = false;
          for (const GeneralizedTuple& dead : erased) {
            meta.erase(dead);
            for (auto fit = fresh_head.begin(); fit != fresh_head.end();
                 ++fit) {
              if (fit->Compare(dead) == 0) {
                fresh_head.erase(fit);
                break;
              }
            }
          }
        } else {
          auto mit = meta.find(tuple);
          if (mit != meta.end()) mit->second.support |= bit;
        }
      }
    }

    uint64_t delta_tuples = 0;
    std::map<std::string, GeneralizedRelation> delta_out;
    for (auto& [head, rel] : work) {
      std::vector<GeneralizedTuple>& fresh_head = fresh[head];
      if (fresh_head.empty()) continue;
      delta_tuples += fresh_head.size();
      GeneralizedRelation diff =
          RelationFromTuples(rel.arity(), fresh_head);
      view->idb_.SetRelation(head, std::move(rel));
      delta_out.emplace(head, std::move(diff));
    }
    EvalCounters::AddViewDeltaTuples(delta_tuples);
    view->max_depth_ =
        std::max(view->max_depth_, static_cast<uint32_t>(rounds));
    delta_in = std::move(delta_out);
  }
  return Status::Ok();
}

Status ViewRegistry::MaintainDelete(
    MaterializedView* view, DatalogEvaluator* eval, const BaseDelta& delta,
    const Database& old_base, const Database& new_base,
    std::map<std::string, GeneralizedRelation>* rederived_out) {
  QueryGuard* guard = CurrentQueryGuard();
  const std::vector<DatalogRule>& rules = view->program_.rules;

  // The over-delete waves all fire against the pre-statement state: wave k
  // re-executes exactly the derivation steps that consumed a tuple deleted
  // in wave k-1, so each emission that matches a stored tuple verbatim
  // clears the emitting rule's support bit. Support empty = every recorded
  // derivation is gone = over-delete (re-derive restores survivors).
  Database old_snapshot = old_base;
  for (const std::string& pred : view->idb_.RelationNames()) {
    old_snapshot.SetRelation(pred, *view->idb_.FindRelation(pred));
  }

  const GeneralizedRelation* base_rel = old_base.FindRelation(delta.relation);
  DODB_CHECK(base_rel != nullptr);
  std::map<std::string, GeneralizedRelation> wave;
  wave.emplace(delta.relation,
               RelationFromTuples(base_rel->arity(), delta.deleted));
  std::map<std::string, std::vector<GeneralizedTuple>> overdeleted;
  uint64_t waves = 0;
  const uint64_t max_rounds = options_.datalog.max_iterations;

  while (!wave.empty()) {
    if (max_rounds != 0 && ++waves > max_rounds) {
      return Status::ResourceExhausted(
          StrCat("view '", view->name_,
                 "' over-delete did not stabilize within ", max_rounds,
                 " waves"));
    }
    if (guard != nullptr &&
        !guard->Checkpoint(GuardSite::kViewDeltaApply)) {
      return guard->status();
    }
    Database snapshot = old_snapshot;
    for (const auto& [pred, rel] : wave) {
      snapshot.SetRelation(StrCat(kDeltaRelationName, ":", pred), rel);
    }
    std::vector<DeltaJob> jobs = PlanDeltaJobs(view->program_, wave);
    if (jobs.empty()) break;

    std::vector<FirePlan> plans(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      plans[j] = PlanSemiJoinRestrictions(
          rules[jobs[j].rule], jobs[j].occurrence, wave.at(jobs[j].pred), j,
          &snapshot);
      plans[j].redirects.emplace_back(
          jobs[j].occurrence, StrCat(kDeltaRelationName, ":", jobs[j].pred));
    }
    auto eval_job = [&](size_t j) -> Result<GeneralizedRelation> {
      if (plans[j].provably_empty) {
        return GeneralizedRelation(
            static_cast<int>(rules[jobs[j].rule].head_args.size()));
      }
      if (guard != nullptr && !guard->Checkpoint(GuardSite::kDatalogRule)) {
        return guard->status();
      }
      return eval->FireRule(jobs[j].rule, snapshot, plans[j].redirects);
    };
    std::vector<Result<GeneralizedRelation>> fired =
        RunJobs(jobs.size(), snapshot, eval_job);

    std::map<std::string, std::vector<GeneralizedTuple>> dead;
    GuardTicker ticker(guard, GuardSite::kViewDeltaApply, 64);
    for (size_t j = 0; j < jobs.size(); ++j) {
      if (!fired[j].ok()) return fired[j].status();
      const std::string& head = rules[jobs[j].rule].head;
      MaterializedView::MetaMap& meta = view->meta_[head];
      const uint64_t bit = RuleBit(jobs[j].rule);
      for (const GeneralizedTuple& tuple : fired[j].value().tuples()) {
        if (!ticker.Tick()) return guard->status();
        auto mit = meta.find(tuple);
        if (mit == meta.end()) continue;  // emission not stored verbatim
        mit->second.support &= ~bit;
        // Recursive-rule bits are not trustworthy here: they can be backed
        // by a derivation cycle the deleted tuple was part of, so stopping
        // the cascade on them under-deletes. Only a surviving base-only bit
        // (an acyclic derivation from EDB tuples the exactness invariant
        // vouches for) keeps the tuple; everything else is over-deleted and
        // left to the re-derive pass.
        if ((mit->second.support & view->base_only_rules_) == 0) {
          dead[head].push_back(mit->first);
          meta.erase(mit);
        }
      }
    }

    uint64_t dead_tuples = 0;
    std::map<std::string, GeneralizedRelation> next_wave;
    for (auto& [head, tuples] : dead) {
      dead_tuples += tuples.size();
      GeneralizedRelation work = *view->idb_.FindRelation(head);
      for (const GeneralizedTuple& tuple : tuples) {
        bool present = work.EraseCanonicalTuple(tuple);
        DODB_CHECK(present);
      }
      next_wave.emplace(head, RelationFromTuples(work.arity(), tuples));
      view->idb_.SetRelation(head, std::move(work));
      std::vector<GeneralizedTuple>& sink = overdeleted[head];
      sink.insert(sink.end(), tuples.begin(), tuples.end());
    }
    EvalCounters::AddViewDeltaTuples(dead_tuples);
    wave = std::move(next_wave);
  }

  if (overdeleted.empty()) return Status::Ok();

  // Re-derive: for each affected head, fire its rules over the *reduced*
  // state, semi-joined with the over-deleted region — each rule gets an
  // extra body literal over a relation holding that head's over-deleted
  // tuples, so only alternative derivations of the removed regions are
  // enumerated (DRed's delta-restricted re-derivation). Survivors re-enter
  // the insert pipeline, which completes recursion in depth order.
  Database reduced = new_base;
  for (const std::string& pred : view->idb_.RelationNames()) {
    reduced.SetRelation(pred, *view->idb_.FindRelation(pred));
  }
  for (const auto& [head, tuples] : overdeleted) {
    const GeneralizedRelation* rel = view->idb_.FindRelation(head);
    DODB_CHECK(rel != nullptr);
    reduced.SetRelation(StrCat(kRederiveRelationName, ":", head),
                        RelationFromTuples(rel->arity(), tuples));
  }
  DatalogProgram rederive_program;
  std::vector<size_t> source_rule;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (overdeleted.count(rules[i].head) == 0) continue;
    DatalogRule focused = rules[i];
    DatalogLiteral semi_join;
    semi_join.kind = DatalogLiteral::Kind::kRelation;
    semi_join.relation = StrCat(kRederiveRelationName, ":", focused.head);
    semi_join.args = focused.head_args;
    focused.body.push_back(std::move(semi_join));
    rederive_program.rules.push_back(std::move(focused));
    source_rule.push_back(i);
  }
  DatalogEvaluator rederive_eval(rederive_program, &reduced, eval->options());

  // The appended semi-join literal plays the delta role here: the firing
  // only needs body tuples that can join the over-deleted region.
  std::vector<FirePlan> plans(rederive_program.rules.size());
  for (size_t j = 0; j < rederive_program.rules.size(); ++j) {
    const DatalogRule& focused = rederive_program.rules[j];
    const size_t semi_join_occ = focused.body.size() - 1;
    const GeneralizedRelation* over =
        reduced.FindRelation(focused.body[semi_join_occ].relation);
    DODB_CHECK(over != nullptr);
    plans[j] = PlanSemiJoinRestrictions(focused, semi_join_occ, *over, j,
                                        &reduced);
  }
  auto eval_job = [&](size_t j) -> Result<GeneralizedRelation> {
    if (plans[j].provably_empty) {
      return GeneralizedRelation(static_cast<int>(
          rederive_program.rules[j].head_args.size()));
    }
    if (guard != nullptr && !guard->Checkpoint(GuardSite::kViewRederive)) {
      return guard->status();
    }
    return rederive_eval.FireRule(j, reduced, plans[j].redirects);
  };
  std::vector<Result<GeneralizedRelation>> fired =
      RunJobs(rederive_program.rules.size(), reduced, eval_job);

  std::map<std::string, GeneralizedRelation> work;
  GuardTicker ticker(guard, GuardSite::kViewRederive, 64);
  std::vector<GeneralizedTuple> erased;
  uint64_t rederived = 0;
  for (size_t j = 0; j < fired.size(); ++j) {
    if (!fired[j].ok()) return fired[j].status();
    const std::string& head = rederive_program.rules[j].head;
    auto wit = work.find(head);
    if (wit == work.end()) {
      wit = work.emplace(head, *view->idb_.FindRelation(head)).first;
    }
    MaterializedView::MetaMap& meta = view->meta_[head];
    const uint64_t bit = RuleBit(source_rule[j]);
    for (const GeneralizedTuple& tuple : fired[j].value().tuples()) {
      if (!ticker.Tick()) return guard->status();
      erased.clear();
      if (wit->second.AddCanonicalTupleCaptured(tuple, &erased)) {
        ++rederived;
        meta[tuple] = MaterializedView::TupleMeta{bit, view->max_depth_};
        if (!erased.empty()) view->exact_support_ = false;
        for (const GeneralizedTuple& dead : erased) meta.erase(dead);
        auto dit = rederived_out->find(head);
        if (dit == rederived_out->end()) {
          dit = rederived_out
                    ->emplace(head, GeneralizedRelation(wit->second.arity()))
                    .first;
        }
        dit->second.AddCanonicalTuple(tuple);
      } else {
        auto mit = meta.find(tuple);
        if (mit != meta.end()) mit->second.support |= bit;
      }
    }
  }
  for (auto& [head, rel] : work) {
    view->idb_.SetRelation(head, std::move(rel));
  }
  EvalCounters::AddViewRederivations(rederived);
  return Status::Ok();
}

}  // namespace dodb
