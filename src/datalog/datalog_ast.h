#ifndef DODB_DATALOG_DATALOG_AST_H_
#define DODB_DATALOG_DATALOG_AST_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

/// A body literal of a Datalog(not) rule: a possibly negated relation atom,
/// or a dense-order constraint atom (never negated — the parser folds
/// negation into the comparison operator).
struct DatalogLiteral {
  enum class Kind { kRelation, kCompare };

  Kind kind = Kind::kRelation;
  bool negated = false;            // kRelation only
  std::string relation;            // kRelation
  std::vector<FoExpr> args;        // kRelation (simple terms)
  FoExpr lhs, rhs;                 // kCompare
  RelOp op = RelOp::kEq;           // kCompare

  std::string ToString() const;
};

/// A rule head(args) :- body. Head arguments are simple terms (variables or
/// constants); body variables not occurring in the head are implicitly
/// existentially quantified.
struct DatalogRule {
  std::string head;
  std::vector<FoExpr> head_args;
  std::vector<DatalogLiteral> body;  // empty body == unconditional fact rule

  std::string ToString() const;
};

/// A query "?- body." appearing in a program: evaluated against the
/// fixpoint, answering the relation over the body's free variables (in
/// first-occurrence order).
struct DatalogQuery {
  std::vector<DatalogLiteral> body;

  /// Free variables in first-occurrence order (the answer columns).
  std::vector<std::string> HeadVars() const;

  std::string ToString() const;
};

/// A Datalog(not) program over dense-order constraints (§4). Predicates
/// defined by rule heads are intensional (IDB); all other relation symbols
/// must exist in the extensional database.
struct DatalogProgram {
  std::vector<DatalogRule> rules;
  std::vector<DatalogQuery> queries;

  /// Names of IDB predicates (rule heads) with their arity.
  std::map<std::string, int> IdbArities() const;

  /// Validation: consistent arities for every predicate, simple terms only,
  /// IDB names not colliding with EDB relations, EDB relations present with
  /// matching arity.
  Status Validate(const Database& edb) const;

  std::string ToString() const;
};

}  // namespace dodb

#endif  // DODB_DATALOG_DATALOG_AST_H_
