#ifndef DODB_DATALOG_VIEW_MAINTENANCE_H_
#define DODB_DATALOG_VIEW_MAINTENANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraints/closure_cache.h"
#include "core/status.h"
#include "datalog/datalog_evaluator.h"
#include "io/database.h"

namespace dodb {

/// Incremental maintenance of materialized Datalog views (DESIGN.md §13).
///
/// A view is a Datalog program registered under a name that must also be
/// one of the program's head predicates; that predicate's fixpoint relation
/// is exported into the catalog (queryable like any base relation), while
/// helper predicates stay internal to the view. After the initial
/// materialization, committed base-relation DML is propagated at O(delta)
/// cost instead of re-running the fixpoint:
///
///   - inserts fire the program's delta rules semi-naively from the changed
///     tuples only (base-relation occurrences first, then derived deltas),
///     reusing the shard-pair job fan-out and a per-view closure memo that
///     persists across maintenance passes;
///   - deletes run DRed-style over the per-tuple support masks: a wave of
///     delta-restricted firings against the pre-delete snapshot clears the
///     emitting rule's support bit; a touched tuple survives only while a
///     *base-only* rule's bit remains set (recursive-rule bits can be
///     backed by derivation cycles, so they never stop the cascade), the
///     rest are structurally erased and propagated, and one re-derive
///     firing per affected head (over the reduced snapshot) restores
///     everything still derivable, with the restored tuples re-entering
///     the insert pipeline so recursive strata refill in derivation-depth
///     order;
///   - when the statement's delta exceeds options().max_delta_fraction of
///     the view's base tuples — or the program uses negation, or a
///     maintenance pass trips the query guard — the pass falls back to a
///     full recompute (or marks the view stale for a later refresh).
///
/// Consistency contract: after a successful ApplyDelta, every non-stale
/// view's exported relation is structurally identical to a from-scratch
/// evaluation of its program over the current base relations (the
/// randomized differentials in view_maintenance_test check exactly this at
/// 1 and 8 threads). A stale view keeps serving its last materialized state
/// until RefreshStale or the next maintenance pass recomputes it.
///
/// Not thread-safe: the registry serializes with the single-writer command
/// layer, like the catalog and the storage engine. Parallelism lives
/// *inside* a maintenance pass (rule jobs on the shared pool).

struct ViewMaintenanceOptions {
  /// Incremental maintenance hands off to a full recompute when
  /// (inserted + deleted) exceeds this fraction of the view's total base
  /// tuples. Guard-configurable from the shell (`\view threshold`).
  double max_delta_fraction = 0.25;
  /// Evaluation knobs shared by recompute and delta passes (threads, index/
  /// shard toggles, guard limits, fault spec...).
  DatalogOptions datalog;
};

/// One committed base-relation change, as structural tuple sets: `inserted`
/// are canonical tuples now stored that were not, `deleted` the reverse.
/// Note a semantic DML delete often produces both (surviving regions are
/// re-canonicalized into new forms), which is why both directions travel in
/// one delta. `old_relation`, when set, is the relation's pre-statement
/// state (an O(1) copy-on-write snapshot) — the delete pass fires its
/// over-delete rules against it; when absent it is reconstructed from the
/// current state plus the delta.
struct BaseDelta {
  std::string relation;
  std::vector<GeneralizedTuple> inserted;
  std::vector<GeneralizedTuple> deleted;
  std::unique_ptr<GeneralizedRelation> old_relation;
  /// Whether the statement subsume-erased stored base tuples without
  /// reporting them in `deleted` (dominated-delete elision: the displacing
  /// insert covers every derivation the displaced tuple fed). Semantically
  /// harmless for positive programs, but it breaks the support-mask
  /// invariant — bits may reference combinations whose inputs are gone —
  /// so dependent views lose exact_support() and later deletes recompute.
  bool base_displaced = false;
};

class ViewRegistry;

/// One registered view: definition, materialized IDB, and the per-tuple
/// maintenance metadata (support mask + derivation depth).
class MaterializedView {
 public:
  const std::string& name() const { return name_; }
  /// The definition text, verbatim (WAL payload; reparsed on Restore).
  const std::string& text() const { return text_; }
  const DatalogProgram& program() const { return program_; }
  /// Base (EDB) relations the program reads; DML on any of them triggers
  /// maintenance, and dropping one is refused while the view exists.
  const std::set<std::string>& base_relations() const { return bases_; }
  /// Whether the view can be maintained incrementally (positive program
  /// with at most 64 rules); otherwise every DML recomputes.
  bool incremental() const { return incremental_; }
  /// Whether every materialized tuple carries an exact support mask (some
  /// rule's firing emits it verbatim). Rebuilt-from-scratch masks can be
  /// inexact when a tuple's producing inputs were later subsume-erased;
  /// then incremental *deletes* would be unsound, so they recompute while
  /// inserts stay incremental.
  bool exact_support() const { return exact_support_; }
  /// Whether the materialization lags the base relations (a maintenance
  /// pass failed or recovery re-registered the view without state). Stale
  /// views recompute on the next maintenance pass or RefreshStale().
  bool stale() const { return stale_; }
  /// Deepest derivation round recorded in the current materialization.
  uint32_t max_depth() const { return max_depth_; }
  /// Exported relation's tuple count (0 while stale-and-empty).
  size_t tuple_count() const;

 private:
  friend class ViewRegistry;

  struct TupleMeta {
    uint64_t support = 0;  // bit i set = rule i emitted this tuple
    uint32_t depth = 0;    // fixpoint round of first derivation
  };
  struct TupleHash {
    size_t operator()(const GeneralizedTuple& t) const {
      return t.CachedSignature().hash;
    }
  };
  struct TupleEq {
    bool operator()(const GeneralizedTuple& a,
                    const GeneralizedTuple& b) const {
      return a.Compare(b) == 0;
    }
  };
  using MetaMap =
      std::unordered_map<GeneralizedTuple, TupleMeta, TupleHash, TupleEq>;

  std::string name_;
  std::string text_;
  DatalogProgram program_;
  std::map<std::string, int> idb_arities_;
  std::set<std::string> bases_;
  /// Bit i set = rule i's body reads base relations only. Only these bits
  /// are *acyclic* support: a recursive rule's bit may be backed by a
  /// derivation cycle (tc(a,b) and tc(b,a) each justifying the other), so
  /// the over-delete cascade must not stop on it — a tuple survives a
  /// delete wave only while a base-only bit remains set, and anything else
  /// is over-deleted and handed to re-derivation (plain DRed).
  uint64_t base_only_rules_ = 0;
  bool incremental_ = true;
  bool exact_support_ = true;
  bool stale_ = false;
  uint32_t max_depth_ = 0;
  /// Every IDB predicate's materialized fixpoint (the exported predicate
  /// plus helpers). Tuples share storage with the catalog export (COW).
  Database idb_;
  /// Per-predicate maintenance metadata, keyed by canonical tuple.
  std::map<std::string, MetaMap> meta_;
  /// Closure memo persisted across maintenance passes: successive deltas
  /// re-derive mostly-identical candidate conjunctions, so later passes
  /// serve most canonicalizations from here.
  std::unique_ptr<ClosureCache> memo_ = std::make_unique<ClosureCache>();
};

class ViewRegistry {
 public:
  explicit ViewRegistry(ViewMaintenanceOptions options = {});
  ~ViewRegistry();
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Parses and validates `text`, fully materializes the view, and exports
  /// its head relation into `*db` under `name`. The program must define a
  /// predicate named `name`, reference only existing non-view relations as
  /// EDB, and not collide with catalog names.
  Result<const MaterializedView*> Create(const std::string& name,
                                         const std::string& text,
                                         Database* db);

  /// Unregisters the view and removes its exported relation from `*db`.
  Status Drop(const std::string& name, Database* db);

  /// Re-registers a view from its definition text without evaluating it
  /// (the WAL-replay path): the view starts stale and recomputes on the
  /// next RefreshStale or maintenance pass. Validation against the catalog
  /// is deferred to that recompute — during replay the base relations may
  /// not have been reconstructed yet.
  Status Restore(const std::string& name, const std::string& text);

  /// Drops a view's registration without touching any catalog (WAL-replay
  /// counterpart of a logged view drop; the caller removes the relation).
  bool RestoreDrop(const std::string& name);

  /// Recomputes every stale view against `*db` (after crash recovery).
  Status RefreshStale(Database* db);

  /// Propagates one committed base-relation change into every dependent
  /// view — incrementally when possible, by full recompute otherwise. On a
  /// maintenance error (guard trip, resource exhaustion) the affected view
  /// is marked stale and the first error is returned; the base DML itself
  /// is already applied and unaffected.
  Status ApplyDelta(const BaseDelta& delta, Database* db);

  bool IsView(const std::string& name) const;
  /// Whether any view reads `relation` as a base relation.
  bool DependsOn(const std::string& relation) const;
  const MaterializedView* Find(const std::string& name) const;
  /// Registered views in name order.
  std::vector<const MaterializedView*> Views() const;
  size_t view_count() const { return views_.size(); }

  ViewMaintenanceOptions& options() { return options_; }
  const ViewMaintenanceOptions& options() const { return options_; }

 private:
  /// Shared Create/Restore setup: derives IDB arities, base relations and
  /// the incremental gate from the parsed program, and installs empty
  /// relation shells.
  Status Prepare(MaterializedView* view);

  /// From-scratch fixpoint of `view` over the base relations in `*db`
  /// (minus every view export), rebuilding support/depth metadata, then
  /// re-exports. Counts a view_full_recompute.
  Status Recompute(MaterializedView* view, Database* db);

  /// One incremental pass for a single view. `delta` must touch one of its
  /// base relations.
  Status Maintain(MaterializedView* view, const BaseDelta& delta,
                  Database* db);

  /// The semi-naive insert pipeline: seeds per-predicate deltas (base
  /// and/or rederived IDB tuples) and runs delta-rule firings to fixpoint,
  /// updating tuples/meta in place. `eval` is the pass evaluator over the
  /// current base snapshot; the maintenance scopes must already be
  /// installed.
  Status PropagateInserts(MaterializedView* view, DatalogEvaluator* eval,
                          std::map<std::string, GeneralizedRelation> delta_in,
                          const Database& base);

  /// DRed over-delete + re-derive. `delta.deleted` is the statement's
  /// structural removal set; `old_base`/`new_base` the pre-/post-statement
  /// base snapshots. Emits every rederived insert delta into
  /// `rederived_out` for the insert pipeline (which completes recursive
  /// re-derivation in depth order).
  Status MaintainDelete(
      MaterializedView* view, DatalogEvaluator* eval, const BaseDelta& delta,
      const Database& old_base, const Database& new_base,
      std::map<std::string, GeneralizedRelation>* rederived_out);

  /// After a full recompute of an incremental view: one naive firing per
  /// rule over the final fixpoint, OR-ing each rule's bit into the stored
  /// tuples it re-emits verbatim. Clears exact_support_ when some stored
  /// tuple gets no bit (see MaterializedView::exact_support()).
  Status RebuildSupport(MaterializedView* view, DatalogEvaluator* eval,
                        const Database& base);

  /// `*db` minus every view's exported relation: the evaluation base.
  Database BaseSnapshot(const Database& db) const;

  /// Copies the view's exported predicate relation into the catalog.
  void Export(const MaterializedView& view, Database* db) const;

  ViewMaintenanceOptions options_;
  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
};

}  // namespace dodb

#endif  // DODB_DATALOG_VIEW_MAINTENANCE_H_
