#ifndef DODB_SPATIAL_INTERVAL_H_
#define DODB_SPATIAL_INTERVAL_H_

#include <string>
#include <vector>

#include "constraints/generalized_relation.h"
#include "core/rational.h"

namespace dodb {
namespace spatial {

/// A 1-D rational interval with independent boundary conditions — the
/// temporal-database face of dense-order constraints.
struct Interval {
  Rational lo, hi;
  bool lo_closed = true;
  bool hi_closed = true;

  /// The unary generalized tuple lo (<|<=) x (<|<=) hi.
  GeneralizedTuple ToTuple() const;

  /// Whether the interval denotes a nonempty set of rationals.
  bool IsNonEmpty() const;

  bool Contains(const Rational& value) const;

  /// Whether the two intervals share a point.
  bool Overlaps(const Interval& other) const;

  /// Allen-style "meets": this ends exactly where other starts, with at
  /// least one of the touching endpoints closed.
  bool Meets(const Interval& other) const;

  std::string ToString() const;
};

/// A union-of-intervals relation (arity 1).
GeneralizedRelation IntervalUnion(const std::vector<Interval>& intervals);

/// An interval *schema* relation iv(lo, hi): one point tuple per interval
/// (closed bounds assumed) — the encoding used when interval endpoints are
/// data that Datalog rules join on.
GeneralizedRelation IntervalEndpointRelation(
    const std::vector<Interval>& intervals);

}  // namespace spatial
}  // namespace dodb

#endif  // DODB_SPATIAL_INTERVAL_H_
