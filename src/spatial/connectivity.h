#ifndef DODB_SPATIAL_CONNECTIVITY_H_
#define DODB_SPATIAL_CONNECTIVITY_H_

#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {
namespace spatial {

/// Topological connectivity of the region denoted by a dense-order
/// constraint relation, interpreted in R^k (the real closure of the
/// rational constraints — the reading under which "region connectivity" in
/// §4 is a meaningful spatial query).
///
/// Algorithm: split every tuple's inequations so each piece is a conjunction
/// of {<, <=, =} atoms, i.e. a convex polyhedron; two convex pieces A, B
/// have a connected union iff (cl(A) ∩ B) ∪ (A ∩ cl(B)) is nonempty; the
/// whole region is connected iff the touch graph of its pieces is. This is
/// a genuinely *procedural* computation — by Theorem 4.3 no FO/FO+ query
/// expresses it, which bench_thm43 demonstrates empirically.
///
/// Returns the number of connected components (0 for the empty region).
Result<int> CountConnectedComponents(const GeneralizedRelation& region);

/// Whether the region is nonempty and connected.
Result<bool> IsConnected(const GeneralizedRelation& region);

}  // namespace spatial
}  // namespace dodb

#endif  // DODB_SPATIAL_CONNECTIVITY_H_
