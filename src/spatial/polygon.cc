#include "spatial/polygon.h"

#include <algorithm>
#include <set>

#include "core/check.h"

namespace dodb {
namespace spatial {

Rational Cross(const Point2& a, const Point2& b, const Point2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

ConvexPolygon ConvexPolygon::FromSystem(LinearSystem system) {
  DODB_CHECK_MSG(system.arity() == 2, "ConvexPolygon is 2-D");
  return ConvexPolygon(std::move(system));
}

namespace {

LinearExpr X() { return LinearExpr::Var(0); }
LinearExpr Y() { return LinearExpr::Var(1); }

// Interior-left constraint of the directed edge p -> q (CCW boundary):
// (q.y - p.y) * (x - p.x) - (q.x - p.x) * (y - p.y) <= 0.
LinearAtom EdgeAtom(const Point2& p, const Point2& q) {
  LinearExpr e = X().Minus(LinearExpr::Const(p.x)).ScaledBy(q.y - p.y)
                     .Minus(Y().Minus(LinearExpr::Const(p.y))
                                .ScaledBy(q.x - p.x));
  return LinearAtom(std::move(e), LinOp::kLe);
}

}  // namespace

ConvexPolygon ConvexPolygon::ConvexHull(std::vector<Point2> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  LinearSystem system(2);

  if (points.empty()) {
    system.AddAtom(LinearAtom(LinearExpr::Const(Rational(1)), LinOp::kLe));
    return ConvexPolygon(std::move(system));
  }
  if (points.size() == 1) {
    system.AddAtom(LinearAtom(X().Minus(LinearExpr::Const(points[0].x)),
                              LinOp::kEq));
    system.AddAtom(LinearAtom(Y().Minus(LinearExpr::Const(points[0].y)),
                              LinOp::kEq));
    return ConvexPolygon(std::move(system));
  }

  // Andrew's monotone chain; popping on cross <= 0 discards collinear
  // middle points. Result: hull in counter-clockwise order.
  std::vector<Point2> hull;
  auto build = [&hull](const Point2& p) {
    while (hull.size() >= 2 &&
           Cross(hull[hull.size() - 2], hull[hull.size() - 1], p) <=
               Rational(0)) {
      hull.pop_back();
    }
    hull.push_back(p);
  };
  for (const Point2& p : points) build(p);
  size_t lower_size = hull.size();
  for (size_t i = points.size() - 1; i-- > 0;) {
    const Point2& p = points[i];
    while (hull.size() > lower_size &&
           Cross(hull[hull.size() - 2], hull[hull.size() - 1], p) <=
               Rational(0)) {
      hull.pop_back();
    }
    hull.push_back(p);
  }
  hull.pop_back();  // last point repeats the first

  if (hull.size() == 2) {
    // All points collinear: the hull is the segment [hull0, hull1].
    const Point2& p = hull[0];
    const Point2& q = hull[1];
    // On the line through p and q:
    LinearExpr line = X().Minus(LinearExpr::Const(p.x)).ScaledBy(q.y - p.y)
                          .Minus(Y().Minus(LinearExpr::Const(p.y))
                                     .ScaledBy(q.x - p.x));
    system.AddAtom(LinearAtom(std::move(line), LinOp::kEq));
    // Between the endpoints: (q - p) . (r - p) >= 0 and (p - q) . (r - q)
    // >= 0.
    LinearExpr from_p =
        X().Minus(LinearExpr::Const(p.x)).ScaledBy(q.x - p.x).Plus(
            Y().Minus(LinearExpr::Const(p.y)).ScaledBy(q.y - p.y));
    LinearExpr from_q =
        X().Minus(LinearExpr::Const(q.x)).ScaledBy(p.x - q.x).Plus(
            Y().Minus(LinearExpr::Const(q.y)).ScaledBy(p.y - q.y));
    system.AddAtom(LinearAtom(from_p.Negated(), LinOp::kLe));
    system.AddAtom(LinearAtom(from_q.Negated(), LinOp::kLe));
    return ConvexPolygon(std::move(system));
  }

  for (size_t i = 0; i < hull.size(); ++i) {
    system.AddAtom(EdgeAtom(hull[i], hull[(i + 1) % hull.size()]));
  }
  return ConvexPolygon(std::move(system));
}

bool ConvexPolygon::Contains(const Point2& p) const {
  return system_.Contains({p.x, p.y});
}

bool ConvexPolygon::IsEmpty() const { return !system_.IsSatisfiable(); }

bool ConvexPolygon::IsBounded() const {
  if (IsEmpty()) return true;
  // Recession cone: directions d with a . d (<=|=) 0 for every constraint.
  LinearSystem cone(2);
  for (const LinearAtom& atom : system_.atoms()) {
    LinearExpr direction;
    for (const auto& [index, coeff] : atom.expr().coeffs()) {
      direction =
          direction.Plus(LinearExpr::Var(index).ScaledBy(coeff));
    }
    cone.AddAtom(LinearAtom(std::move(direction),
                            atom.op() == LinOp::kEq ? LinOp::kEq
                                                    : LinOp::kLe));
  }
  // Nontrivial direction iff one exists with a coordinate pinned to +-1.
  const Rational kOne(1);
  for (int coord = 0; coord < 2; ++coord) {
    for (int sign = -1; sign <= 1; sign += 2) {
      LinearSystem probe = cone;
      probe.AddAtom(LinearAtom(
          LinearExpr::Var(coord).Minus(LinearExpr::Const(
              sign > 0 ? kOne : -kOne)),
          LinOp::kEq));
      if (coord == 1) {
        probe.AddAtom(LinearAtom(LinearExpr::Var(0), LinOp::kEq));
      }
      if (probe.IsSatisfiable()) return false;
    }
  }
  return true;
}

ConvexPolygon ConvexPolygon::IntersectWith(const ConvexPolygon& other) const {
  return ConvexPolygon(system_.Conjoin(other.system_));
}

namespace {

// Closure membership: strict atoms relaxed to non-strict.
bool ContainsClosure(const LinearSystem& system, const Point2& p) {
  for (const LinearAtom& atom : system.atoms()) {
    Rational value = atom.expr().Eval({p.x, p.y});
    if (atom.op() == LinOp::kEq) {
      if (!value.is_zero()) return false;
    } else if (value > Rational(0)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<Point2>> ConvexPolygon::Vertices() const {
  if (IsEmpty()) {
    return Status::InvalidArgument("empty polygon has no vertices");
  }
  if (!IsBounded()) {
    return Status::InvalidArgument(
        "vertex enumeration requires a bounded polygon");
  }
  // Boundary lines a*x + b*y + c = 0 from every atom.
  struct Line {
    Rational a, b, c;
  };
  std::vector<Line> lines;
  for (const LinearAtom& atom : system_.atoms()) {
    lines.push_back(Line{atom.expr().coeff(0), atom.expr().coeff(1),
                         atom.expr().constant()});
  }
  std::set<Point2> candidates;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      Rational det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (det.is_zero()) continue;
      // Cramer on a*x + b*y = -c.
      Point2 p;
      p.x = ((-lines[i].c) * lines[j].b - (-lines[j].c) * lines[i].b) / det;
      p.y = (lines[i].a * (-lines[j].c) - lines[j].a * (-lines[i].c)) / det;
      if (ContainsClosure(system_, p)) candidates.insert(p);
    }
  }
  // Degenerate single-point region (x = c and y = d gives one candidate
  // only if two non-parallel lines exist — they do).
  std::vector<Point2> vertices(candidates.begin(), candidates.end());
  if (vertices.size() <= 2) return vertices;  // point or segment

  // Sort counter-clockwise around the centroid, starting from the
  // lexicographically smallest vertex.
  Rational cx(0), cy(0);
  for (const Point2& v : vertices) {
    cx += v.x;
    cy += v.y;
  }
  Rational count(static_cast<int64_t>(vertices.size()));
  Point2 centroid{cx / count, cy / count};
  auto half = [&centroid](const Point2& p) {
    // 0: upper half-plane (dy > 0, or dy == 0 and dx > 0); 1: lower.
    Rational dy = p.y - centroid.y;
    if (dy > Rational(0)) return 0;
    if (dy < Rational(0)) return 1;
    return p.x - centroid.x > Rational(0) ? 0 : 1;
  };
  std::sort(vertices.begin(), vertices.end(),
            [&](const Point2& p, const Point2& q) {
              int hp = half(p);
              int hq = half(q);
              if (hp != hq) return hp < hq;
              return Cross(centroid, p, q) > Rational(0);
            });
  auto smallest = std::min_element(vertices.begin(), vertices.end());
  std::rotate(vertices.begin(), smallest, vertices.end());
  return vertices;
}

ConvexPolygon VoronoiCell(const Point2& site,
                          const std::vector<Point2>& sites) {
  LinearSystem system(2);
  const Rational kTwo(2);
  for (const Point2& other : sites) {
    if (other == site) continue;
    // |p - site|^2 <= |p - other|^2
    //   <=>  2 p . (other - site) <= |other|^2 - |site|^2.
    LinearExpr lhs = LinearExpr::Var(0).ScaledBy(kTwo * (other.x - site.x))
                         .Plus(LinearExpr::Var(1).ScaledBy(
                             kTwo * (other.y - site.y)));
    Rational rhs = other.x * other.x + other.y * other.y -
                   site.x * site.x - site.y * site.y;
    system.AddAtom(
        LinearAtom(lhs.Minus(LinearExpr::Const(rhs)), LinOp::kLe));
  }
  return ConvexPolygon::FromSystem(std::move(system));
}

}  // namespace spatial
}  // namespace dodb
