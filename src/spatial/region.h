#ifndef DODB_SPATIAL_REGION_H_
#define DODB_SPATIAL_REGION_H_

#include <vector>

#include "constraints/generalized_relation.h"
#include "core/rational.h"

namespace dodb {

/// The paper's §2 spatial vocabulary (Figure 1): 2-D regions finitely
/// represented by dense-order constraints. Rectangles and the axis-monotone
/// shapes of Figure 1 need only "four constants along with a flag
/// indicating the shape (and boundary conditions)".
namespace spatial {

/// An axis-aligned rectangle [x_lo, x_hi] x [y_lo, y_hi]; `closed` selects
/// the boundary condition (closed or fully open).
struct Rect {
  Rational x_lo, x_hi, y_lo, y_hi;
  bool closed = true;
};

/// The binary generalized tuple of a rectangle (column 0 = x, column 1 = y).
GeneralizedTuple RectTuple(const Rect& rect);

/// A region as the union of rectangles.
GeneralizedRelation RectUnion(const std::vector<Rect>& rects);

/// The Figure-1 style staircase with `steps` unit steps starting at
/// (origin, origin): the union of steps [origin+i, origin+i+1] x
/// [origin+i, origin+i+1]; consecutive steps share exactly one corner
/// point, so the staircase is connected but thin at the corners.
GeneralizedRelation CornerStaircase(int steps, const Rational& origin);

/// Same staircase but with every second shared corner point removed,
/// splitting the region into ceil(steps/2) connected components (pairs of
/// steps). With CornerStaircase this forms the connected/disconnected
/// region family of the Theorem 4.3 experiment.
GeneralizedRelation BrokenStaircase(int steps, const Rational& origin);

/// The paper's triangle example: x <= y and x >= lo and y <= hi.
GeneralizedRelation Triangle(const Rational& lo, const Rational& hi);

/// Whether two constraint regions of equal arity intersect.
bool Intersects(const GeneralizedRelation& a, const GeneralizedRelation& b);

}  // namespace spatial
}  // namespace dodb

#endif  // DODB_SPATIAL_REGION_H_
