#include "spatial/region.h"

#include "algebra/relational_ops.h"
#include "core/check.h"

namespace dodb {
namespace spatial {

GeneralizedTuple RectTuple(const Rect& rect) {
  DODB_CHECK_MSG(rect.x_lo <= rect.x_hi && rect.y_lo <= rect.y_hi,
                 "degenerate rectangle bounds");
  RelOp lower = rect.closed ? RelOp::kGe : RelOp::kGt;
  RelOp upper = rect.closed ? RelOp::kLe : RelOp::kLt;
  GeneralizedTuple tuple(2);
  tuple.AddAtom(DenseAtom(Term::Var(0), lower, Term::Const(rect.x_lo)));
  tuple.AddAtom(DenseAtom(Term::Var(0), upper, Term::Const(rect.x_hi)));
  tuple.AddAtom(DenseAtom(Term::Var(1), lower, Term::Const(rect.y_lo)));
  tuple.AddAtom(DenseAtom(Term::Var(1), upper, Term::Const(rect.y_hi)));
  return tuple;
}

GeneralizedRelation RectUnion(const std::vector<Rect>& rects) {
  GeneralizedRelation out(2);
  for (const Rect& rect : rects) out.AddTuple(RectTuple(rect));
  return out;
}

GeneralizedRelation CornerStaircase(int steps, const Rational& origin) {
  DODB_CHECK(steps >= 1);
  std::vector<Rect> rects;
  rects.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    Rational lo = origin + Rational(i);
    Rational hi = origin + Rational(i + 1);
    rects.push_back(Rect{lo, hi, lo, hi, /*closed=*/true});
  }
  return RectUnion(rects);
}

GeneralizedRelation BrokenStaircase(int steps, const Rational& origin) {
  DODB_CHECK(steps >= 1);
  // Cut the shared corner point (origin+i, origin+i) for every even i >= 2:
  // the point must vanish from the *union*, so both adjacent steps exclude
  // it. Each step borders at most one cut corner: step i's lower corner is
  // cut when i is even (>= 2), its upper corner when i is odd.
  GeneralizedRelation out(2);
  for (int i = 0; i < steps; ++i) {
    Rational lo = origin + Rational(i);
    Rational hi = origin + Rational(i + 1);
    GeneralizedTuple tuple =
        RectTuple(Rect{lo, hi, lo, hi, /*closed=*/true});
    bool lower_cut = i >= 2 && i % 2 == 0;
    bool upper_cut = i % 2 == 1 && i + 1 >= 2;
    if (!lower_cut && !upper_cut) {
      out.AddTuple(tuple);
      continue;
    }
    // rect minus {(a,a)} == (rect and x != a) or (rect and y != a).
    const Rational& a = lower_cut ? lo : hi;
    GeneralizedTuple left = tuple;
    left.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Const(a)));
    GeneralizedTuple bottom = tuple;
    bottom.AddAtom(DenseAtom(Term::Var(1), RelOp::kNeq, Term::Const(a)));
    out.AddTuple(std::move(left));
    out.AddTuple(std::move(bottom));
  }
  return out;
}

GeneralizedRelation Triangle(const Rational& lo, const Rational& hi) {
  GeneralizedTuple tuple(2);
  tuple.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Var(1)));
  tuple.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(lo)));
  tuple.AddAtom(DenseAtom(Term::Var(1), RelOp::kLe, Term::Const(hi)));
  GeneralizedRelation out(2);
  out.AddTuple(tuple);
  return out;
}

bool Intersects(const GeneralizedRelation& a, const GeneralizedRelation& b) {
  return !algebra::Intersect(a, b).IsEmpty();
}

}  // namespace spatial
}  // namespace dodb
