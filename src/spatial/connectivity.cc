#include "spatial/connectivity.h"

#include <vector>

#include "core/check.h"

namespace dodb {
namespace spatial {

namespace {

// Expands every inequation t1 != t2 of `tuple` into the < and > branches,
// yielding satisfiable convex pieces (conjunctions over {<, <=, =} define
// intersections of half-spaces and hyperplanes of R^k, hence convex sets).
void ConvexPieces(const GeneralizedTuple& tuple,
                  std::vector<GeneralizedTuple>* out) {
  for (size_t i = 0; i < tuple.atoms().size(); ++i) {
    const DenseAtom& atom = tuple.atoms()[i];
    if (atom.op() != RelOp::kNeq) continue;
    GeneralizedTuple lt(tuple.arity());
    GeneralizedTuple gt(tuple.arity());
    for (size_t j = 0; j < tuple.atoms().size(); ++j) {
      if (j == i) continue;
      lt.AddAtom(tuple.atoms()[j]);
      gt.AddAtom(tuple.atoms()[j]);
    }
    lt.AddAtom(DenseAtom(atom.lhs(), RelOp::kLt, atom.rhs()));
    gt.AddAtom(DenseAtom(atom.lhs(), RelOp::kGt, atom.rhs()));
    ConvexPieces(lt, out);
    ConvexPieces(gt, out);
    return;
  }
  if (tuple.IsSatisfiable()) out->push_back(tuple);
}

// The topological closure of a nonempty convex piece: relax strict
// comparisons to their non-strict counterparts.
GeneralizedTuple TopologicalClosure(const GeneralizedTuple& piece) {
  GeneralizedTuple out(piece.arity());
  for (const DenseAtom& atom : piece.atoms()) {
    RelOp op = atom.op();
    if (op == RelOp::kLt) op = RelOp::kLe;
    if (op == RelOp::kGt) op = RelOp::kGe;
    out.AddAtom(DenseAtom(atom.lhs(), op, atom.rhs()));
  }
  return out;
}

// For convex sets A and B: A ∪ B is connected iff
// (cl(A) ∩ B) ∪ (A ∩ cl(B)) is nonempty.
bool Touch(const GeneralizedTuple& a, const GeneralizedTuple& b) {
  if (TopologicalClosure(a).Conjoin(b).IsSatisfiable()) return true;
  return a.Conjoin(TopologicalClosure(b)).IsSatisfiable();
}

}  // namespace

Result<int> CountConnectedComponents(const GeneralizedRelation& region) {
  std::vector<GeneralizedTuple> pieces;
  for (const GeneralizedTuple& tuple : region.tuples()) {
    ConvexPieces(tuple, &pieces);
  }
  if (pieces.empty()) return 0;

  // Union-find over the touch graph. A finite union of convex sets is
  // connected iff its touch graph is: touching pieces certainly merge, and
  // if the pieces split into two groups with no touching cross pair then
  // the groups' unions are separated.
  std::vector<int> parent(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&parent](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = i + 1; j < pieces.size(); ++j) {
      int ri = find(static_cast<int>(i));
      int rj = find(static_cast<int>(j));
      if (ri == rj) continue;
      if (Touch(pieces[i], pieces[j])) parent[ri] = rj;
    }
  }
  int components = 0;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (find(static_cast<int>(i)) == static_cast<int>(i)) ++components;
  }
  return components;
}

Result<bool> IsConnected(const GeneralizedRelation& region) {
  Result<int> components = CountConnectedComponents(region);
  if (!components.ok()) return components.status();
  return components.value() == 1;
}

}  // namespace spatial
}  // namespace dodb
