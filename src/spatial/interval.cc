#include "spatial/interval.h"

#include "core/str_util.h"

namespace dodb {
namespace spatial {

GeneralizedTuple Interval::ToTuple() const {
  GeneralizedTuple tuple(1);
  tuple.AddAtom(DenseAtom(Term::Var(0), lo_closed ? RelOp::kGe : RelOp::kGt,
                          Term::Const(lo)));
  tuple.AddAtom(DenseAtom(Term::Var(0), hi_closed ? RelOp::kLe : RelOp::kLt,
                          Term::Const(hi)));
  return tuple;
}

bool Interval::IsNonEmpty() const {
  if (lo < hi) return true;
  return lo == hi && lo_closed && hi_closed;
}

bool Interval::Contains(const Rational& value) const {
  if (value < lo || value > hi) return false;
  if (value == lo && !lo_closed) return false;
  if (value == hi && !hi_closed) return false;
  return true;
}

bool Interval::Overlaps(const Interval& other) const {
  GeneralizedTuple joint = ToTuple().Conjoin(other.ToTuple());
  return joint.IsSatisfiable();
}

bool Interval::Meets(const Interval& other) const {
  return hi == other.lo && (hi_closed || other.lo_closed) && IsNonEmpty() &&
         other.IsNonEmpty();
}

std::string Interval::ToString() const {
  return StrCat(lo_closed ? "[" : "(", lo.ToString(), ", ", hi.ToString(),
                hi_closed ? "]" : ")");
}

GeneralizedRelation IntervalUnion(const std::vector<Interval>& intervals) {
  GeneralizedRelation out(1);
  for (const Interval& interval : intervals) {
    out.AddTuple(interval.ToTuple());
  }
  return out;
}

GeneralizedRelation IntervalEndpointRelation(
    const std::vector<Interval>& intervals) {
  GeneralizedRelation out(2);
  for (const Interval& interval : intervals) {
    out.AddTuple(GeneralizedTuple::Point({interval.lo, interval.hi}));
  }
  return out;
}

}  // namespace spatial
}  // namespace dodb
