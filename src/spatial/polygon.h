#ifndef DODB_SPATIAL_POLYGON_H_
#define DODB_SPATIAL_POLYGON_H_

#include <utility>
#include <vector>

#include "core/status.h"
#include "linear/linear_system.h"

namespace dodb {
namespace spatial {

/// A point of the rational plane.
struct Point2 {
  Rational x, y;

  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }
  bool operator<(const Point2& o) const {
    int cmp = x.Compare(o.x);
    if (cmp != 0) return cmp < 0;
    return y < o.y;
  }
};

/// 2 * signed area of the triangle (a, b, c): positive iff counter-
/// clockwise. Exact.
Rational Cross(const Point2& a, const Point2& b, const Point2& c);

/// A convex region of the rational plane as a conjunction of linear
/// constraints (an arity-2 LinearSystem) — the paper's intro example of
/// where dense-order constraints stop and linear constraints (FO+) begin:
/// convex hulls are not expressible, let alone definable, with order alone.
class ConvexPolygon {
 public:
  /// Wraps an arity-2 system (need not be satisfiable).
  static ConvexPolygon FromSystem(LinearSystem system);

  /// The convex hull of finitely many points (Andrew's monotone chain with
  /// exact rational arithmetic). Degenerate inputs are handled: a segment
  /// or single point yields the corresponding flat polygon; an empty input
  /// yields the empty polygon.
  static ConvexPolygon ConvexHull(std::vector<Point2> points);

  const LinearSystem& system() const { return system_; }

  bool Contains(const Point2& p) const;
  bool IsEmpty() const;

  /// Whether the region is bounded (the recession cone is trivial).
  bool IsBounded() const;

  /// Intersection of two convex regions.
  ConvexPolygon IntersectWith(const ConvexPolygon& other) const;

  /// The vertices of a nonempty *bounded* region in counter-clockwise
  /// order starting from the lexicographically smallest. Vertices are the
  /// feasible intersection points of constraint boundary lines.
  /// InvalidArgument on empty or unbounded regions.
  Result<std::vector<Point2>> Vertices() const;

 private:
  explicit ConvexPolygon(LinearSystem system) : system_(std::move(system)) {}

  LinearSystem system_;
};

/// The closed Voronoi cell of `site` among `sites`: every point at least as
/// close (in Euclidean distance) to `site` as to each other site. Squared
/// distances cancel the quadratic terms, so each bisector is a half-plane
/// and the cell an intersection of linear constraints — the paper's second
/// named example (after convex hull) of geometry needing FO+ rather than
/// dense order.
ConvexPolygon VoronoiCell(const Point2& site,
                          const std::vector<Point2>& sites);

}  // namespace spatial
}  // namespace dodb

#endif  // DODB_SPATIAL_POLYGON_H_
